package cluster

// The Transport seam. A Cluster owns the driver side of a deployment —
// the coordinator actor, per-session quiescence counters and statistics —
// and reaches its n worker sites exclusively through a Transport. Two
// backends implement it:
//
//   - the in-process channel network (InProc, below), where sites are
//     goroutines in the driver's own process — the original runtime, now
//     just one backend; and
//   - the TCP backend (internal/transport/tcpnet), where sites live in
//     dgsd daemon processes and every message crosses a real socket as a
//     length-prefixed wire frame.
//
// Because site handlers must be constructible in a process that has never
// seen the driver's objects, sessions are opened from a SessionSpec — an
// algorithm name resolved against the site-factory registry plus the
// encoded query and configuration — rather than from caller-built
// handler values. Direct handler sessions (NewSession) remain available
// on in-process transports for tests and custom protocols.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dgs/internal/obs"
	"dgs/internal/partition"
)

// SessionSpec describes a session so that any site — local or remote —
// can instantiate its per-site handler: the registered algorithm name,
// the query in pattern wire encoding (empty for query-less protocols
// such as the acyclicity check and fragment-update distribution), and an
// algorithm-specific configuration blob.
type SessionSpec struct {
	Algo   string
	Query  []byte
	Config []byte
	// Planner and Plan carry an optional evaluation plan (internal/plan
	// wire encoding) built by the named registered planner. Plans are
	// advisory — they reorder work without changing results — so
	// transports that negotiated a pre-plan protocol version may drop
	// them silently; the site then evaluates in declaration order.
	Planner string
	Plan    []byte
	// TraceID, when nonzero, asks every site to record per-round spans
	// for this session (internal/obs) and ship them back on close. Like
	// the plan, tracing is advisory: transports that negotiated a
	// pre-trace protocol version drop the field silently and the trace
	// comes back partial. Zero means tracing off — and, on the wire,
	// an OPEN body byte-identical to the pre-trace encoding.
	TraceID uint64
}

// Transport hosts the worker sites of one deployment and moves encoded
// payloads between them and the driver. All methods are safe for
// concurrent use. Send and Close are fire-and-forget: delivery failures
// surface asynchronously through Events.Fail.
type Transport interface {
	// NumSites reports the number of worker sites the transport hosts.
	NumSites() int
	// Bind installs the driver's event sink. Called exactly once, before
	// any session is opened.
	Bind(ev Events)
	// Open instantiates session qid's handlers on every site from spec.
	// An error means no site holds the session (in-process resolution
	// failure); remote resolution failures arrive through Events.Fail.
	Open(qid uint64, kind SessionKind, spec SessionSpec) error
	// Close discards session qid's handlers and any queued traffic.
	Close(qid uint64)
	// Send delivers one encoded payload to worker site `to` on behalf of
	// session qid. from may be Coordinator or another site ID.
	Send(qid uint64, from, to int, data []byte)
	// Shutdown tears the backend down, releasing site resources and —
	// for networked backends — closing connections gracefully.
	Shutdown()
	// WireBytes reports the measured transport-level bytes (frame
	// headers included) attributable to session qid: 0 for in-process
	// backends, real socket bytes for networked ones.
	WireBytes(qid uint64) int64
}

// HandlerOpener is the optional Transport extension for direct handler
// sessions: installing caller-built Handler values is only possible when
// the sites share the caller's address space.
type HandlerOpener interface {
	OpenHandlers(qid uint64, sites []Handler) error
}

// FragmentSharer is the optional Transport extension declaring whether
// the sites operate on the driver's own fragment objects (in-process
// hosting) or on shipped copies. Deployments use it to decide whether
// an update batch must additionally be replayed driver-side; a wrapper
// around an in-process transport should forward it. Absent, a transport
// is assumed to hold copies.
type FragmentSharer interface {
	SharesDriverFragments() bool
}

// Recoverer is the optional Transport extension for site-loss recovery.
// A transport implementing it scopes failures to individual sites
// (reporting them via Events.Fail with an error wrapping ErrSiteLost)
// instead of declaring the whole deployment dead, and can re-host the
// lost sites afterwards.
type Recoverer interface {
	// Lost reports the IDs of the worker sites currently without a live
	// host, ascending. Empty means every site is reachable.
	Lost() []int
	// Recover re-hosts every lost site from the driver's fragmentation —
	// the driver retains each fragment's shippable bytes — onto a spare
	// or surviving host. With full set, every site's fragment is
	// re-shipped (replace semantics), the recovery mode for a loss that
	// interrupted an update batch and may have left survivors ahead of
	// the driver's committed state. An error means the lost sites remain
	// down (e.g. no spare host available).
	Recover(ctx context.Context, fr *partition.Fragmentation, full bool) error
}

// Tracer is the optional Transport extension for distributed query
// tracing: collecting the per-site spans the hosts of a traced session
// recorded. Call after the session was closed — remote hosts ship
// their spans when they process the close. complete is false when some
// host's spans are missing (a pre-trace protocol version on its
// connection, or a connection lost before its spans arrived); the
// returned spans are still valid for the hosts that reported.
type Tracer interface {
	Trace(ctx context.Context, qid uint64) (spans []obs.SiteTrace, complete bool, err error)
}

// LossNotifier is the optional Transport extension that announces
// detected site losses to the deployment layer, which reacts by running
// recovery. fn may be invoked from any transport goroutine and must not
// call back into the transport synchronously.
type LossNotifier interface {
	OnSiteLoss(fn func(err error))
}

// Events is the upcall sink a Transport drives; the Cluster implements
// it. Calls may come from any transport goroutine.
type Events interface {
	// SiteSent records that a site-originated message entered the
	// network, taking over accounting and routing: the cluster counts it
	// in-flight and either delivers it to the coordinator or hands it
	// back to the transport for the destination site.
	SiteSent(qid uint64, from, to int, data []byte)
	// Deliver hands the coordinator a message addressed to it whose
	// accounting already happened (used by transports that route
	// coordinator traffic themselves; SiteSent calls it internally).
	Deliver(qid uint64, from int, data []byte)
	// Retired reports that n of session qid's messages finished
	// processing at a site, together with the handlers' summed busy time
	// and any communication rounds they recorded. n > 1 is how a
	// transport retires a coalesced ACK: the in-flight counter drops by
	// exactly n, so the quiescence certificate is the same as n
	// per-message calls.
	Retired(qid uint64, site int, busy time.Duration, rounds int64, n int)
	// Fail aborts session qid with err; qid 0 aborts every session (the
	// transport itself died). Waiters observe err from WaitQuiesce.
	Fail(qid uint64, err error)
}

// SiteFactory builds one site's handler for a session opened from a
// spec. frag is the site's resident fragment and assign the global
// owner directory; both are nil on fragment-less hosts (pure protocol
// tests). Factories run on the process hosting the site.
type SiteFactory func(spec SessionSpec, frag *partition.Fragment, assign []int32) (Handler, error)

var (
	regMu    sync.Mutex
	registry = make(map[string]SiteFactory)
)

// RegisterAlgorithm installs the site factory for spec.Algo == name.
// Algorithm packages register themselves in init; a binary that should
// serve an algorithm (the driver in-process, or cmd/dgsd remotely) just
// imports its package. Duplicate names panic.
func RegisterAlgorithm(name string, f SiteFactory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cluster: algorithm %q registered twice", name))
	}
	registry[name] = f
}

// ResolveAlgorithm looks a registered site factory up by name.
func ResolveAlgorithm(name string) (SiteFactory, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	f, ok := registry[name]
	return f, ok
}

// RegisteredAlgorithms lists the registered algorithm names, sorted —
// what a dgsd daemon advertises and `make docs` cross-checks.
func RegisteredAlgorithms() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
