package cluster

// SiteHost is the actor runtime for worker sites, shared by both
// transport backends: the in-process network runs one host with all n
// sites in the driver's process, a dgsd daemon runs one host with its
// shard of sites. Each hosted site is a serial actor — an unbounded
// mailbox drained by one goroutine — so a handler never races itself,
// while different sites run concurrently. The host knows nothing about
// sockets or statistics; it reports every outbound message and every
// retired message to its SiteSink, and the backend decides whether that
// means a function call (in-process) or a wire frame (TCP).

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

// SiteSink receives a SiteHost's outbound effects. Implementations must
// be safe for concurrent use (each site goroutine calls in).
type SiteSink interface {
	// ForwardSend routes a message a hosted site's handler emitted. to
	// may be Coordinator, a site on this host, or a site elsewhere —
	// routing is the sink's problem.
	ForwardSend(qid uint64, from, to int, data []byte)
	// Retire reports that the site finished processing one delivered
	// message, with the handler's busy time and recorded rounds.
	Retire(qid uint64, site int, busy time.Duration, rounds int64)
	// Fatal reports an unrecoverable protocol error (an undecodable
	// message reached a site). The in-process sink panics — exactly the
	// old behavior — while a daemon reports it to the driver and resets.
	Fatal(err error)
}

type siteState struct {
	id     int // global site ID
	box    *mailbox
	rounds int64 // scratch: rounds recorded by the Recv in progress
}

type hostSession struct {
	handlers map[int]Handler // by global site ID
	ctxs     map[int]*Ctx
	trace    *obs.SpanRecorder // nil unless the session is traced
}

// SiteHost hosts a set of worker sites identified by their global IDs.
type SiteHost struct {
	total  int // sites in the whole deployment
	sites  map[int]*siteState
	frags  map[int]*partition.Fragment // may be empty (protocol tests)
	assign []int32
	net    Network // link emulation; zero for real networks
	sink   SiteSink

	mu       sync.RWMutex // guards sessions, sites, frags, closed
	sessions map[uint64]*hostSession
	closed   bool

	// traces holds the recorders of traced sessions past their close,
	// until TakeTrace collects them — a daemon ships spans after it
	// processed the CLOSE frame, the in-process backend after
	// Session.Close already unregistered the session.
	traceMu sync.Mutex
	traces  map[uint64]*obs.SpanRecorder

	wg sync.WaitGroup
}

// NewSiteHost starts the site goroutines for the given global site IDs.
// frags maps a hosted ID to its resident fragment (nil entries and a nil
// map are allowed — spec factories then receive a nil fragment). net is
// the emulated link model; pass the zero Network when a real network
// provides the latency.
func NewSiteHost(total int, ids []int, frags map[int]*partition.Fragment, assign []int32, net Network, sink SiteSink) *SiteHost {
	h := &SiteHost{
		total:    total,
		sites:    make(map[int]*siteState, len(ids)),
		frags:    frags,
		assign:   assign,
		net:      net,
		sink:     sink,
		sessions: make(map[uint64]*hostSession),
		traces:   make(map[uint64]*obs.SpanRecorder),
	}
	for _, id := range ids {
		st := &siteState{id: id, box: newMailbox()}
		h.sites[id] = st
		h.wg.Add(1)
		go h.siteLoop(st)
	}
	return h
}

// Hosts reports whether site id lives on this host.
func (h *SiteHost) Hosts(id int) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.sites[id]
	return ok
}

// HostedIDs reports the hosted global site IDs, in no particular order.
func (h *SiteHost) HostedIDs() []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ids := make([]int, 0, len(h.sites))
	for id := range h.sites {
		ids = append(ids, id)
	}
	return ids
}

// AddSites starts site goroutines for newly assigned global IDs with
// their resident fragments — how a surviving daemon absorbs a lost
// peer's sites on re-deployment. An ID already hosted only has its
// fragment replaced. No new goroutines start on a shut-down host.
func (h *SiteHost) AddSites(ids []int, frags map[int]*partition.Fragment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.frags == nil {
		h.frags = make(map[int]*partition.Fragment, len(ids))
	}
	for _, id := range ids {
		if f, ok := frags[id]; ok {
			h.frags[id] = f
		}
		if _, ok := h.sites[id]; ok || h.closed {
			continue
		}
		st := &siteState{id: id, box: newMailbox()}
		h.sites[id] = st
		h.wg.Add(1)
		go h.siteLoop(st)
	}
}

// ReplaceFragments swaps the resident fragments of already-hosted sites
// — the full re-deployment mode, where the driver's committed state
// replaces whatever a survivor holds after an interrupted update batch.
// Sessions opened after the call see the replacements; live sessions
// keep the fragments they were built on.
func (h *SiteHost) ReplaceFragments(frags map[int]*partition.Fragment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.frags == nil {
		h.frags = make(map[int]*partition.Fragment, len(frags))
	}
	for id, f := range frags {
		h.frags[id] = f
	}
}

// Open instantiates session qid on every hosted site from spec, via the
// algorithm registry.
func (h *SiteHost) Open(qid uint64, kind SessionKind, spec SessionSpec) error {
	factory, ok := ResolveAlgorithm(spec.Algo)
	if !ok {
		return fmt.Errorf("cluster: unknown algorithm %q", spec.Algo)
	}
	type siteFrag struct {
		id   int
		frag *partition.Fragment
	}
	h.mu.RLock()
	list := make([]siteFrag, 0, len(h.sites))
	for id := range h.sites {
		list = append(list, siteFrag{id, h.frags[id]})
	}
	assign := h.assign
	h.mu.RUnlock()
	handlers := make(map[int]Handler, len(list))
	for _, sf := range list {
		hd, err := factory(spec, sf.frag, assign)
		if err != nil {
			return fmt.Errorf("cluster: algorithm %q site %d: %w", spec.Algo, sf.id, err)
		}
		handlers[sf.id] = hd
	}
	return h.install(qid, handlers, spec.TraceID)
}

// OpenHandlers installs caller-built handlers, keyed by global site ID.
// Only meaningful when caller and host share a process.
func (h *SiteHost) OpenHandlers(qid uint64, handlers map[int]Handler) error {
	return h.install(qid, handlers, 0)
}

func (h *SiteHost) install(qid uint64, handlers map[int]Handler, traceID uint64) error {
	hs := &hostSession{handlers: handlers, ctxs: make(map[int]*Ctx, len(handlers))}
	if traceID != 0 {
		hs.trace = obs.NewSpanRecorder(traceID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range handlers {
		st, ok := h.sites[id]
		if !ok {
			return fmt.Errorf("cluster: handler for site %d which is not hosted here", id)
		}
		hs.ctxs[id] = h.siteCtx(qid, st, hs.trace)
	}
	if h.closed {
		// Shut-down host: accept the registration as a no-op; queued
		// traffic is already being discarded.
		return nil
	}
	h.sessions[qid] = hs
	if hs.trace != nil {
		h.traceMu.Lock()
		h.traces[qid] = hs.trace
		h.traceMu.Unlock()
	}
	return nil
}

// siteCtx builds the per-(session, site) handler context. The rounds
// accumulator lives in siteState and is read back by the site loop after
// each Recv — safe because one goroutine owns the site. For traced
// sessions the context also attributes each send to the site's current
// round: sends happen inside Recv on the site's own goroutine, so the
// round index is stable for the duration.
func (h *SiteHost) siteCtx(qid uint64, st *siteState, trace *obs.SpanRecorder) *Ctx {
	return &Ctx{
		self: st.id,
		n:    h.total,
		send: func(to int, p wire.Payload) {
			data := wire.Encode(p)
			if trace != nil {
				trace.RecordOut(st.id, len(data))
			}
			h.sink.ForwardSend(qid, st.id, to, data)
		},
		addRounds: func(n int64) { st.rounds += n },
	}
}

// CloseSession discards session qid's handlers; queued envelopes for it
// are dropped when dequeued. A traced session's recorder survives until
// TakeTrace collects it.
func (h *SiteHost) CloseSession(qid uint64) {
	h.mu.Lock()
	delete(h.sessions, qid)
	h.mu.Unlock()
}

// TakeTrace removes and returns the spans a traced session's sites
// recorded; traced is false for untraced (or already-collected, or
// unknown) sessions. A traced session whose sites saw no traffic
// reports traced=true with empty spans — a daemon still owes the
// driver a TRACE frame for it. Call after CloseSession: a straggler
// Recv racing the close may still be recording into the session's
// accumulator.
func (h *SiteHost) TakeTrace(qid uint64) (spans []obs.SiteTrace, traced bool) {
	h.traceMu.Lock()
	rec := h.traces[qid]
	delete(h.traces, qid)
	h.traceMu.Unlock()
	if rec == nil {
		return nil, false
	}
	return rec.Snapshot(), true
}

// Enqueue delivers one encoded payload to hosted site `to`. The message
// is timestamped for link emulation when the host's Network is non-zero.
func (h *SiteHost) Enqueue(qid uint64, from, to int, data []byte) {
	h.mu.RLock()
	st, ok := h.sites[to]
	h.mu.RUnlock()
	if !ok {
		h.sink.Fatal(fmt.Errorf("cluster: message for site %d which is not hosted here", to))
		return
	}
	env := envelope{qid: qid, from: from, data: data}
	if h.net.Latency > 0 || h.net.Bandwidth > 0 || h.net.PerMsg > 0 {
		env.sent = time.Now()
	}
	st.box.put(env)
}

func (h *SiteHost) siteLoop(st *siteState) {
	defer h.wg.Done()
	for {
		env, ok := st.box.get()
		if !ok {
			return
		}
		h.mu.RLock()
		hs := h.sessions[env.qid]
		h.mu.RUnlock()
		if hs == nil {
			// Session closed (or never opened here): discard. The driver
			// released the session's in-flight accounting when it closed.
			continue
		}
		if !env.sent.IsZero() {
			// Pipelined propagation latency, then serialized NIC drain.
			if wait := time.Until(env.sent.Add(h.net.Latency)); wait > 0 {
				time.Sleep(wait)
			}
			if x := h.net.xferTime(len(env.data)); x > 0 {
				time.Sleep(x)
			}
		}
		p, err := wire.Decode(env.data)
		if err != nil {
			h.sink.Fatal(fmt.Errorf("cluster: site %d received undecodable message from %d: %v", st.id, env.from, err))
			continue
		}
		st.rounds = 0
		start := time.Now()
		hs.handlers[st.id].Recv(hs.ctxs[st.id], env.from, p)
		busy := time.Since(start)
		if hs.trace != nil {
			hs.trace.RecordIn(st.id, len(env.data), busy, st.rounds)
		}
		h.sink.Retire(env.qid, st.id, busy, st.rounds)
	}
}

// Shutdown stops every site goroutine and waits for them. Idempotent.
func (h *SiteHost) Shutdown() {
	h.mu.Lock()
	h.closed = true
	sites := make([]*siteState, 0, len(h.sites))
	for _, st := range h.sites {
		sites = append(sites, st)
	}
	h.mu.Unlock()
	for _, st := range sites {
		st.box.close()
	}
	h.wg.Wait()
}

// --- the in-process backend ---

// InProc is the in-process channel network: all n sites are goroutines
// in the driver's process, messages are Go slices handed between
// mailboxes (still fully serialized through internal/wire — byte counts
// are exact), and link cost is emulated by the Network model. This is
// the original runtime of the repo, now one Transport among others, and
// the only backend that supports direct handler sessions.
type InProc struct {
	n    int
	net  Network
	host *SiteHost
	ev   Events
}

var _ Transport = (*InProc)(nil)
var _ HandlerOpener = (*InProc)(nil)
var _ FragmentSharer = (*InProc)(nil)
var _ Tracer = (*InProc)(nil)

// NewInProc creates the in-process backend hosting n sites with the
// fragments of fr resident (fr may be nil for fragment-less protocol
// sessions; spec factories then receive nil fragments).
func NewInProc(n int, fr *partition.Fragmentation, net Network) *InProc {
	t := &InProc{n: n, net: net}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	var frags map[int]*partition.Fragment
	var assign []int32
	if fr != nil {
		frags = make(map[int]*partition.Fragment, n)
		for i, f := range fr.Frags {
			frags[i] = f
		}
		assign = fr.Assign
	}
	t.host = NewSiteHost(n, ids, frags, assign, net, (*inprocSink)(t))
	return t
}

// inprocSink adapts SiteHost upcalls onto the bound Events. A separate
// type so InProc's public method set stays the Transport interface.
type inprocSink InProc

func (s *inprocSink) ForwardSend(qid uint64, from, to int, data []byte) {
	s.ev.SiteSent(qid, from, to, data)
}

func (s *inprocSink) Retire(qid uint64, site int, busy time.Duration, rounds int64) {
	s.ev.Retired(qid, site, busy, rounds, 1)
}

func (s *inprocSink) Fatal(err error) { panic(err) }

// NumSites implements Transport.
func (t *InProc) NumSites() int { return t.n }

// Bind implements Transport.
func (t *InProc) Bind(ev Events) { t.ev = ev }

// LinkModel exposes the emulated Network (Cluster.Network reads it).
func (t *InProc) LinkModel() Network { return t.net }

// SharesDriverFragments implements FragmentSharer: the sites mutate the
// driver's own fragment objects, so no driver-side replay is needed.
func (t *InProc) SharesDriverFragments() bool { return true }

// Open implements Transport via the algorithm registry.
func (t *InProc) Open(qid uint64, kind SessionKind, spec SessionSpec) error {
	return t.host.Open(qid, kind, spec)
}

// OpenHandlers implements HandlerOpener: sites indexed 0..n-1.
func (t *InProc) OpenHandlers(qid uint64, sites []Handler) error {
	handlers := make(map[int]Handler, len(sites))
	for i, h := range sites {
		handlers[i] = h
	}
	return t.host.OpenHandlers(qid, handlers)
}

// Rehost replaces the resident fragments of the given sites with the
// provided copies — the in-process recovery path used by fault-injecting
// wrappers (internal/transport/faultnet). Sessions opened after the call
// are built on the replacement fragments.
func (t *InProc) Rehost(frags map[int]*partition.Fragment) {
	t.host.ReplaceFragments(frags)
}

// Close implements Transport.
func (t *InProc) Close(qid uint64) { t.host.CloseSession(qid) }

// Trace implements Tracer: the host shares the driver's process, so
// collection is a synchronous map pop — always complete.
func (t *InProc) Trace(ctx context.Context, qid uint64) ([]obs.SiteTrace, bool, error) {
	spans, _ := t.host.TakeTrace(qid)
	return spans, true, nil
}

// Send implements Transport.
func (t *InProc) Send(qid uint64, from, to int, data []byte) {
	t.host.Enqueue(qid, from, to, data)
}

// Shutdown implements Transport.
func (t *InProc) Shutdown() { t.host.Shutdown() }

// WireBytes implements Transport: an in-process message never touches a
// wire, so the measured byte count is 0 by definition.
func (t *InProc) WireBytes(uint64) int64 { return 0 }

// NewLocal creates a cluster over the in-process backend with the
// fragments of fr resident at its sites — the fragment-once/serve-many
// substrate for single-process deployments and the Run wrappers.
func NewLocal(fr *partition.Fragmentation, net Network) *Cluster {
	return NewWithTransport(NewInProc(fr.NumFragments(), fr, net))
}
