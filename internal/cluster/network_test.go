package cluster

import (
	"testing"
	"time"

	"dgs/internal/wire"
)

func TestNetworkXferTime(t *testing.T) {
	n := Network{Bandwidth: 1 << 20, PerMsg: time.Millisecond}
	// 1 MiB at 1 MiB/s = 1s, plus 1ms per message.
	if got := n.xferTime(1 << 20); got != time.Second+time.Millisecond {
		t.Fatalf("xferTime = %v", got)
	}
	zero := Network{}
	if zero.xferTime(1<<20) != 0 {
		t.Fatalf("zero network must be free")
	}
}

func TestEC2NetworkSane(t *testing.T) {
	n := EC2Network()
	if n.Latency <= 0 || n.Bandwidth <= 0 || n.PerMsg <= 0 {
		t.Fatalf("EC2Network = %+v", n)
	}
	// A 3 MB fragment shipment should cost tens of ms, a falsification
	// should cost well under a millisecond of transfer.
	if big := n.xferTime(3 << 20); big < 10*time.Millisecond {
		t.Fatalf("big transfer too cheap: %v", big)
	}
	if small := n.xferTime(16); small > time.Millisecond {
		t.Fatalf("small transfer too expensive: %v", small)
	}
}

func TestNetworkDelaysDelivery(t *testing.T) {
	prev := SetDefaultNetwork(Network{Latency: 20 * time.Millisecond})
	defer SetDefaultNetwork(prev)
	c := New(1)
	done := make(chan time.Time, 1)
	c.Start([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		done <- time.Now()
	})}, nopHandler{})
	start := time.Now()
	c.Inject(0, &wire.Control{})
	c.WaitQuiesce()
	c.Shutdown()
	if got := (<-done).Sub(start); got < 15*time.Millisecond {
		t.Fatalf("latency not applied: delivered after %v", got)
	}
}

func TestNetworkLatencyPipelines(t *testing.T) {
	// 10 messages with 30ms latency must arrive in ~30ms total, not
	// 300ms: propagation overlaps.
	prev := SetDefaultNetwork(Network{Latency: 30 * time.Millisecond})
	defer SetDefaultNetwork(prev)
	c := New(1)
	c.Start([]Handler{nopHandler{}}, nopHandler{})
	start := time.Now()
	for i := 0; i < 10; i++ {
		c.Inject(0, &wire.Control{})
	}
	c.WaitQuiesce()
	c.Shutdown()
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("latency serialized instead of pipelined: %v", el)
	}
}

func TestSetDefaultNetworkReturnsPrevious(t *testing.T) {
	a := Network{Latency: time.Millisecond}
	old := SetDefaultNetwork(a)
	if got := SetDefaultNetwork(old); got != a {
		t.Fatalf("previous network not returned: %+v", got)
	}
}
