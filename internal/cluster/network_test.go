package cluster

import (
	"testing"
	"time"

	"dgs/internal/wire"
)

func TestNetworkXferTime(t *testing.T) {
	n := Network{Bandwidth: 1 << 20, PerMsg: time.Millisecond}
	// 1 MiB at 1 MiB/s = 1s, plus 1ms per message.
	if got := n.xferTime(1 << 20); got != time.Second+time.Millisecond {
		t.Fatalf("xferTime = %v", got)
	}
	zero := Network{}
	if zero.xferTime(1<<20) != 0 {
		t.Fatalf("zero network must be free")
	}
}

func TestEC2NetworkSane(t *testing.T) {
	n := EC2Network()
	if n.Latency <= 0 || n.Bandwidth <= 0 || n.PerMsg <= 0 {
		t.Fatalf("EC2Network = %+v", n)
	}
	// A 3 MB fragment shipment should cost tens of ms, a falsification
	// should cost well under a millisecond of transfer.
	if big := n.xferTime(3 << 20); big < 10*time.Millisecond {
		t.Fatalf("big transfer too cheap: %v", big)
	}
	if small := n.xferTime(16); small > time.Millisecond {
		t.Fatalf("small transfer too expensive: %v", small)
	}
}

func TestNetworkDelaysDelivery(t *testing.T) {
	c := New(1, Network{Latency: 20 * time.Millisecond})
	defer c.Shutdown()
	done := make(chan time.Time, 1)
	s := c.NewSession([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		done <- time.Now()
	})}, nopHandler{})
	defer s.Close()
	start := time.Now()
	s.Inject(0, &wire.Control{})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if got := (<-done).Sub(start); got < 15*time.Millisecond {
		t.Fatalf("latency not applied: delivered after %v", got)
	}
}

func TestNetworkLatencyPipelines(t *testing.T) {
	// 10 messages with 30ms latency must arrive in ~30ms total, not
	// 300ms: propagation overlaps.
	c := New(1, Network{Latency: 30 * time.Millisecond})
	defer c.Shutdown()
	s := c.NewSession(nopSites(1), nopHandler{})
	defer s.Close()
	start := time.Now()
	for i := 0; i < 10; i++ {
		s.Inject(0, &wire.Control{})
	}
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("latency serialized instead of pipelined: %v", el)
	}
}
