package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgs/internal/wire"
)

// echoSite forwards each falsify message to the next site, decrementing a
// hop budget carried in the first pair's V field.
type echoSite struct{}

func (echoSite) Recv(ctx *Ctx, from int, p wire.Payload) {
	f, ok := p.(*wire.Falsify)
	if !ok || len(f.Pairs) == 0 {
		return
	}
	hops := f.Pairs[0].V
	if hops == 0 {
		return
	}
	next := (ctx.Self() + 1) % ctx.NumSites()
	ctx.Send(next, &wire.Falsify{Pairs: []wire.VarRef{{U: f.Pairs[0].U, V: hops - 1}}})
}

type nopHandler struct{}

func (nopHandler) Recv(*Ctx, int, wire.Payload) {}

func TestRingQuiesces(t *testing.T) {
	c := New(4)
	sites := make([]Handler, 4)
	for i := range sites {
		sites[i] = echoSite{}
	}
	c.Start(sites, nopHandler{})
	c.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 10}}})
	c.WaitQuiesce()
	c.Shutdown()
	st := c.Stats()
	// 1 injected + 10 forwarded = 11 data messages.
	if st.DataMsgs != 11 {
		t.Fatalf("DataMsgs = %d, want 11", st.DataMsgs)
	}
	if st.DataBytes != 11*11 { // falsify with one pair encodes to 11 bytes
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
	if st.ControlMsgs != 0 || st.ResultMsgs != 0 {
		t.Fatalf("unexpected control/result traffic: %+v", st)
	}
}

func TestBroadcastReachesAllSites(t *testing.T) {
	var got atomic.Int64
	c := New(8)
	sites := make([]Handler, 8)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			if from != Coordinator {
				t.Errorf("from = %d", from)
			}
			got.Add(1)
		})
	}
	c.Start(sites, nopHandler{})
	c.Broadcast(&wire.Control{Op: 1})
	c.WaitQuiesce()
	c.Shutdown()
	if got.Load() != 8 {
		t.Fatalf("delivered %d, want 8", got.Load())
	}
	st := c.Stats()
	if st.ControlMsgs != 8 || st.DataMsgs != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCoordinatorRoundTrip(t *testing.T) {
	// Sites reply to the coordinator with a Matches message; the
	// coordinator accumulates and the driver reads the result.
	var mu sync.Mutex
	seen := map[int]bool{}
	n := 5
	c := New(n)
	sites := make([]Handler, n)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			ctx.Send(Coordinator, &wire.Matches{Frag: uint16(ctx.Self())})
		})
	}
	coord := HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		if ctx.Self() != Coordinator {
			t.Errorf("coordinator self = %d", ctx.Self())
		}
		m := p.(*wire.Matches)
		mu.Lock()
		seen[int(m.Frag)] = true
		mu.Unlock()
	})
	c.Start(sites, coord)
	c.Broadcast(&wire.Control{Op: 2})
	c.WaitQuiesce()
	c.Shutdown()
	if len(seen) != n {
		t.Fatalf("coordinator saw %d sites", len(seen))
	}
	st := c.Stats()
	if st.ResultMsgs != int64(n) {
		t.Fatalf("ResultMsgs = %d", st.ResultMsgs)
	}
}

// A dense all-to-all burst would deadlock bounded channels; the unbounded
// mailboxes must absorb it.
func TestAllToAllBurstNoDeadlock(t *testing.T) {
	n := 10
	c := New(n)
	sites := make([]Handler, n)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			f := p.(*wire.Falsify)
			if len(f.Pairs) > 0 && f.Pairs[0].V > 0 {
				for j := 0; j < ctx.NumSites(); j++ {
					ctx.Send(j, &wire.Falsify{Pairs: []wire.VarRef{{V: f.Pairs[0].V - 1}}})
				}
			}
		})
	}
	c.Start(sites, nopHandler{})
	done := make(chan struct{})
	go func() {
		c.Broadcast(&wire.Falsify{Pairs: []wire.VarRef{{V: 2}}})
		c.WaitQuiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: burst did not quiesce")
	}
	c.Shutdown()
	// n injected, each spawns n (V=1), each of those spawns n (V=0).
	want := int64(n + n*n + n*n*n)
	if got := c.Stats().DataMsgs; got != want {
		t.Fatalf("DataMsgs = %d, want %d", got, want)
	}
}

func TestMultiPhase(t *testing.T) {
	// Phase 1 then phase 2 on the same cluster; WaitQuiesce twice.
	var phase1, phase2 atomic.Int64
	c := New(3)
	sites := make([]Handler, 3)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			ct := p.(*wire.Control)
			switch ct.Op {
			case 1:
				phase1.Add(1)
			case 2:
				phase2.Add(1)
			}
		})
	}
	c.Start(sites, nopHandler{})
	c.Broadcast(&wire.Control{Op: 1})
	c.WaitQuiesce()
	if phase1.Load() != 3 || phase2.Load() != 0 {
		t.Fatalf("after phase 1: %d %d", phase1.Load(), phase2.Load())
	}
	c.Broadcast(&wire.Control{Op: 2})
	c.WaitQuiesce()
	c.Shutdown()
	if phase2.Load() != 3 {
		t.Fatalf("phase 2 deliveries = %d", phase2.Load())
	}
}

func TestRoundsCounter(t *testing.T) {
	c := New(1)
	c.Start([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		ctx.AddRounds(2)
	})}, nopHandler{})
	c.Inject(0, &wire.Control{})
	c.WaitQuiesce()
	c.Shutdown()
	if c.Stats().Rounds != 2 {
		t.Fatalf("Rounds = %d", c.Stats().Rounds)
	}
}

func TestBytesByKind(t *testing.T) {
	c := New(2)
	sites := []Handler{nopHandler{}, nopHandler{}}
	c.Start(sites, nopHandler{})
	c.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 2}}})
	c.Inject(1, &wire.Control{})
	c.WaitQuiesce()
	c.Shutdown()
	bk := c.BytesByKind()
	if bk[wire.KindFalsify] != 11 {
		t.Fatalf("falsify bytes = %d", bk[wire.KindFalsify])
	}
	if bk[wire.KindControl] != 7 {
		t.Fatalf("control bytes = %d", bk[wire.KindControl])
	}
}

func TestWaitQuiesceImmediateWhenQuiet(t *testing.T) {
	c := New(1)
	c.Start([]Handler{nopHandler{}}, nopHandler{})
	done := make(chan struct{})
	go func() { c.WaitQuiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitQuiesce hung on a quiet cluster")
	}
	c.Shutdown()
}

func TestMaxSiteBusyTracked(t *testing.T) {
	c := New(1)
	c.Start([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		time.Sleep(5 * time.Millisecond)
	})}, nopHandler{})
	c.Inject(0, &wire.Control{})
	c.WaitQuiesce()
	c.Shutdown()
	if c.Stats().MaxSiteBusy < 4*time.Millisecond {
		t.Fatalf("MaxSiteBusy = %v", c.Stats().MaxSiteBusy)
	}
}
