package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgs/internal/wire"
)

// bg is the no-deadline context used by tests that expect quiescence.
var bg = context.Background()

// echoSite forwards each falsify message to the next site, decrementing a
// hop budget carried in the first pair's V field.
type echoSite struct{}

func (echoSite) Recv(ctx *Ctx, from int, p wire.Payload) {
	f, ok := p.(*wire.Falsify)
	if !ok || len(f.Pairs) == 0 {
		return
	}
	hops := f.Pairs[0].V
	if hops == 0 {
		return
	}
	next := (ctx.Self() + 1) % ctx.NumSites()
	ctx.Send(next, &wire.Falsify{Pairs: []wire.VarRef{{U: f.Pairs[0].U, V: hops - 1}}})
}

type nopHandler struct{}

func (nopHandler) Recv(*Ctx, int, wire.Payload) {}

func nopSites(n int) []Handler {
	sites := make([]Handler, n)
	for i := range sites {
		sites[i] = nopHandler{}
	}
	return sites
}

func TestRingQuiesces(t *testing.T) {
	c := New(4, Network{})
	defer c.Shutdown()
	sites := make([]Handler, 4)
	for i := range sites {
		sites[i] = echoSite{}
	}
	s := c.NewSession(sites, nopHandler{})
	defer s.Close()
	s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 10}}})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// 1 injected + 10 forwarded = 11 data messages.
	if st.DataMsgs != 11 {
		t.Fatalf("DataMsgs = %d, want 11", st.DataMsgs)
	}
	if st.DataBytes != 11*11 { // falsify with one pair encodes to 11 bytes
		t.Fatalf("DataBytes = %d", st.DataBytes)
	}
	if st.ControlMsgs != 0 || st.ResultMsgs != 0 {
		t.Fatalf("unexpected control/result traffic: %+v", st)
	}
}

func TestBroadcastReachesAllSites(t *testing.T) {
	var got atomic.Int64
	c := New(8, Network{})
	defer c.Shutdown()
	sites := make([]Handler, 8)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			if from != Coordinator {
				t.Errorf("from = %d", from)
			}
			got.Add(1)
		})
	}
	s := c.NewSession(sites, nopHandler{})
	defer s.Close()
	s.Broadcast(&wire.Control{Op: 1})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 8 {
		t.Fatalf("delivered %d, want 8", got.Load())
	}
	st := s.Stats()
	if st.ControlMsgs != 8 || st.DataMsgs != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCoordinatorRoundTrip(t *testing.T) {
	// Sites reply to the coordinator with a Matches message; the
	// coordinator accumulates and the driver reads the result.
	var mu sync.Mutex
	seen := map[int]bool{}
	n := 5
	c := New(n, Network{})
	defer c.Shutdown()
	sites := make([]Handler, n)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			ctx.Send(Coordinator, &wire.Matches{Frag: uint16(ctx.Self())})
		})
	}
	coord := HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		if ctx.Self() != Coordinator {
			t.Errorf("coordinator self = %d", ctx.Self())
		}
		m := p.(*wire.Matches)
		mu.Lock()
		seen[int(m.Frag)] = true
		mu.Unlock()
	})
	s := c.NewSession(sites, coord)
	defer s.Close()
	s.Broadcast(&wire.Control{Op: 2})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("coordinator saw %d sites", len(seen))
	}
	st := s.Stats()
	if st.ResultMsgs != int64(n) {
		t.Fatalf("ResultMsgs = %d", st.ResultMsgs)
	}
}

// A dense all-to-all burst would deadlock bounded channels; the unbounded
// mailboxes must absorb it.
func TestAllToAllBurstNoDeadlock(t *testing.T) {
	n := 10
	c := New(n, Network{})
	defer c.Shutdown()
	sites := make([]Handler, n)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			f := p.(*wire.Falsify)
			if len(f.Pairs) > 0 && f.Pairs[0].V > 0 {
				for j := 0; j < ctx.NumSites(); j++ {
					ctx.Send(j, &wire.Falsify{Pairs: []wire.VarRef{{V: f.Pairs[0].V - 1}}})
				}
			}
		})
	}
	s := c.NewSession(sites, nopHandler{})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		s.Broadcast(&wire.Falsify{Pairs: []wire.VarRef{{V: 2}}})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: burst did not quiesce")
	}
	// n injected, each spawns n (V=1), each of those spawns n (V=0).
	want := int64(n + n*n + n*n*n)
	if got := s.Stats().DataMsgs; got != want {
		t.Fatalf("DataMsgs = %d, want %d", got, want)
	}
}

func TestMultiPhase(t *testing.T) {
	// Phase 1 then phase 2 on the same session; WaitQuiesce twice.
	var phase1, phase2 atomic.Int64
	c := New(3, Network{})
	defer c.Shutdown()
	sites := make([]Handler, 3)
	for i := range sites {
		sites[i] = HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
			ct := p.(*wire.Control)
			switch ct.Op {
			case 1:
				phase1.Add(1)
			case 2:
				phase2.Add(1)
			}
		})
	}
	s := c.NewSession(sites, nopHandler{})
	defer s.Close()
	s.Broadcast(&wire.Control{Op: 1})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if phase1.Load() != 3 || phase2.Load() != 0 {
		t.Fatalf("after phase 1: %d %d", phase1.Load(), phase2.Load())
	}
	s.Broadcast(&wire.Control{Op: 2})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if phase2.Load() != 3 {
		t.Fatalf("phase 2 deliveries = %d", phase2.Load())
	}
}

func TestRoundsCounter(t *testing.T) {
	c := New(1, Network{})
	defer c.Shutdown()
	s := c.NewSession([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		ctx.AddRounds(2)
	})}, nopHandler{})
	defer s.Close()
	s.Inject(0, &wire.Control{})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Rounds != 2 {
		t.Fatalf("Rounds = %d", s.Stats().Rounds)
	}
}

func TestBytesByKind(t *testing.T) {
	c := New(2, Network{})
	defer c.Shutdown()
	s := c.NewSession(nopSites(2), nopHandler{})
	defer s.Close()
	s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 2}}})
	s.Inject(1, &wire.Control{})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	bk := s.BytesByKind()
	if bk[wire.KindFalsify] != 11 {
		t.Fatalf("falsify bytes = %d", bk[wire.KindFalsify])
	}
	if bk[wire.KindControl] != 7 {
		t.Fatalf("control bytes = %d", bk[wire.KindControl])
	}
}

func TestWaitQuiesceImmediateWhenQuiet(t *testing.T) {
	c := New(1, Network{})
	defer c.Shutdown()
	s := c.NewSession(nopSites(1), nopHandler{})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		if err := s.WaitQuiesce(bg); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitQuiesce hung on a quiet session")
	}
}

func TestMaxSiteBusyTracked(t *testing.T) {
	c := New(1, Network{})
	defer c.Shutdown()
	s := c.NewSession([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		time.Sleep(5 * time.Millisecond)
	})}, nopHandler{})
	defer s.Close()
	s.Inject(0, &wire.Control{})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if s.Stats().MaxSiteBusy < 4*time.Millisecond {
		t.Fatalf("MaxSiteBusy = %v", s.Stats().MaxSiteBusy)
	}
}

// Two sessions on one cluster: traffic and stats must not bleed between
// them, and each quiesces independently — the property Deployment.Query
// relies on for concurrent queries.
func TestConcurrentSessionsIsolated(t *testing.T) {
	n := 4
	c := New(n, Network{})
	defer c.Shutdown()

	mkSites := func() []Handler {
		sites := make([]Handler, n)
		for i := range sites {
			sites[i] = echoSite{}
		}
		return sites
	}
	var wg sync.WaitGroup
	hops := []uint32{5, 17, 9, 13}
	for _, h := range hops {
		wg.Add(1)
		go func(h uint32) {
			defer wg.Done()
			s := c.NewSession(mkSites(), nopHandler{})
			defer s.Close()
			s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: h}}})
			if err := s.WaitQuiesce(bg); err != nil {
				t.Error(err)
				return
			}
			if got := s.Stats().DataMsgs; got != int64(h)+1 {
				t.Errorf("session hops=%d: DataMsgs = %d, want %d", h, got, h+1)
			}
		}(h)
	}
	wg.Wait()
}

// Messages of a closed session are discarded without delivery, and new
// sends are suppressed, so an abandoned query cannot touch a later one.
func TestClosedSessionDropsTraffic(t *testing.T) {
	var delivered atomic.Int64
	c := New(1, Network{})
	defer c.Shutdown()
	block := make(chan struct{})
	s := c.NewSession([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		<-block
		delivered.Add(1)
	})}, nopHandler{})
	s.Inject(0, &wire.Control{})
	s.Inject(0, &wire.Control{})
	// First message is (or will be) in Recv; the second is queued. Close,
	// then unblock: the queued message must be discarded.
	s.Close()
	close(block)
	if err := s.WaitQuiesce(bg); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitQuiesce on closed session = %v, want ErrClosed", err)
	}
	// A fresh session on the same cluster still works.
	s2 := c.NewSession(nopSites(1), nopHandler{})
	defer s2.Close()
	s2.Inject(0, &wire.Control{})
	if err := s2.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got > 1 {
		t.Fatalf("closed session delivered %d messages", got)
	}
}

func TestWaitQuiesceHonorsContext(t *testing.T) {
	c := New(1, Network{})
	defer c.Shutdown()
	block := make(chan struct{})
	defer close(block)
	s := c.NewSession([]Handler{HandlerFunc(func(ctx *Ctx, from int, p wire.Payload) {
		<-block
	})}, nopHandler{})
	defer s.Close()
	s.Inject(0, &wire.Control{})
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.WaitQuiesce(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("WaitQuiesce returned after %v, not promptly", el)
	}
}

func TestNewSessionOnShutdownCluster(t *testing.T) {
	c := New(1, Network{})
	c.Shutdown()
	s := c.NewSession(nopSites(1), nopHandler{})
	s.Inject(0, &wire.Control{}) // must not panic
	if err := s.WaitQuiesce(bg); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	c := New(2, Network{})
	s := c.NewSession(nopSites(2), nopHandler{})
	s.Broadcast(&wire.Control{})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	c.Shutdown()
}

// Many sessions created and torn down in sequence must not leak:
// the registry shrinks back to empty.
func TestSessionRegistryDrains(t *testing.T) {
	c := New(2, Network{})
	defer c.Shutdown()
	for i := 0; i < 50; i++ {
		s := c.NewSession(nopSites(2), nopHandler{})
		s.Broadcast(&wire.Control{Op: uint8(i)})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	c.mu.RLock()
	live := len(c.sessions)
	c.mu.RUnlock()
	if live != 0 {
		t.Fatalf("%d sessions leaked in the registry", live)
	}
}

func TestNumSitesAndNetworkAccessors(t *testing.T) {
	net := Network{Latency: time.Millisecond}
	c := New(3, net)
	defer c.Shutdown()
	if c.NumSites() != 3 {
		t.Fatalf("NumSites = %d", c.NumSites())
	}
	if c.Network() != net {
		t.Fatalf("Network = %+v", c.Network())
	}
	if fmt.Sprint(c.Network().Latency) != "1ms" {
		t.Fatal("unexpected latency")
	}
}

func TestSessionKindsMultiplex(t *testing.T) {
	c := New(3, Network{})
	defer c.Shutdown()
	q1 := c.NewSession(nopSites(3), nopHandler{})
	defer q1.Close()
	m1 := c.NewSessionKind(SessionMaintenance, nopSites(3), nopHandler{})
	m2 := c.NewSessionKind(SessionMaintenance, nopSites(3), nopHandler{})
	if q1.Kind() != SessionQuery || m1.Kind() != SessionMaintenance {
		t.Fatalf("kinds: %v %v", q1.Kind(), m1.Kind())
	}
	if got := c.ActiveSessions(SessionQuery); got != 1 {
		t.Fatalf("query sessions = %d, want 1", got)
	}
	if got := c.ActiveSessions(SessionMaintenance); got != 2 {
		t.Fatalf("maintenance sessions = %d, want 2", got)
	}
	m2.Close()
	if got := c.ActiveSessions(SessionMaintenance); got != 1 {
		t.Fatalf("after close: maintenance sessions = %d, want 1", got)
	}
	// Both kinds drain traffic independently over the same site loops.
	q1.Broadcast(&wire.Control{Op: 1})
	m1.Broadcast(&wire.Control{Op: 2})
	if err := q1.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if err := m1.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if SessionQuery.String() != "query" || SessionMaintenance.String() != "maintenance" {
		t.Fatal("kind names")
	}
	m1.Close()
}

func TestStatsMinus(t *testing.T) {
	a := Stats{DataBytes: 100, DataMsgs: 10, ControlBytes: 30, ControlMsgs: 3, ResultBytes: 7, ResultMsgs: 1, Rounds: 5, Wall: time.Second}
	b := Stats{DataBytes: 40, DataMsgs: 4, ControlBytes: 10, ControlMsgs: 1, ResultBytes: 2, ResultMsgs: 1, Rounds: 2}
	d := a.Minus(b)
	if d.DataBytes != 60 || d.DataMsgs != 6 || d.ControlBytes != 20 || d.ControlMsgs != 2 ||
		d.ResultBytes != 5 || d.ResultMsgs != 0 || d.Rounds != 3 || d.Wall != time.Second {
		t.Fatalf("Minus: %+v", d)
	}
}

// A deployment-fatal transport failure must poison the cluster: live
// sessions fail with the cause, and sessions opened afterwards fail
// immediately instead of waiting forever on dropped sends.
func TestFatalFailurePoisonsCluster(t *testing.T) {
	c := New(2, Network{})
	defer c.Shutdown()
	s := c.NewSession(nopSites(2), nopHandler{})
	boom := errors.New("daemon lost")
	c.Fail(0, boom)
	if err := s.WaitQuiesce(bg); err != boom {
		t.Fatalf("live session WaitQuiesce = %v, want the failure cause", err)
	}
	//lint:allow regconsistent — any name works: the cluster is already dead
	s2, err := c.OpenSession(SessionQuery, SessionSpec{Algo: "anything"}, nopHandler{})
	if err != nil {
		t.Fatalf("OpenSession on a dead cluster must return a failed session, got error %v", err)
	}
	s2.Inject(0, &wire.Control{}) // must not panic or hang
	done := make(chan error, 1)
	go func() { done <- s2.WaitQuiesce(bg) }()
	select {
	case err := <-done:
		if err != boom {
			t.Fatalf("post-failure session WaitQuiesce = %v, want the failure cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-failure session hung — the dead transport was not surfaced")
	}
}
