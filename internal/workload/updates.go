package workload

// Update-stream generation for the mutable-deployment experiments: the
// paper's setting fragments a graph once, but real graphs change, so the
// updates workload draws random edge deletions (distinct existing edges)
// and insertions (absent pairs between existing nodes) to drive
// Deployment.Apply and the standing-query maintenance path.

import (
	"math/rand"

	"dgs/internal/graph"
)

// Deletions samples n distinct existing edges of g, in random order.
// n is capped at |E|.
func Deletions(g *graph.Graph, n int, rng *rand.Rand) []graph.EdgeOp {
	all := make([][2]graph.NodeID, 0, g.NumEdges())
	g.Edges(func(v, w graph.NodeID) bool {
		all = append(all, [2]graph.NodeID{v, w})
		return true
	})
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if n > len(all) {
		n = len(all)
	}
	out := make([]graph.EdgeOp, n)
	for i := 0; i < n; i++ {
		out[i] = graph.EdgeOp{Del: true, V: all[i][0], W: all[i][1]}
	}
	return out
}

// Insertions samples n distinct absent edges between existing nodes of
// g, locality-biased like the synthetic generators so insertions land in
// the same degree regime as the original edges.
func Insertions(g *graph.Graph, n int, rng *rand.Rand) []graph.EdgeOp {
	nv := g.NumNodes()
	if nv == 0 {
		return nil
	}
	seen := make(map[uint64]bool, n)
	out := make([]graph.EdgeOp, 0, n)
	for tries := 0; len(out) < n && tries < 100*n+100; tries++ {
		v := rng.Intn(nv)
		w := localTarget(rng, v, nv, localityWindow)
		k := uint64(v)<<32 | uint64(w)
		if seen[k] || g.HasEdge(graph.NodeID(v), graph.NodeID(w)) {
			continue
		}
		seen[k] = true
		out = append(out, graph.EdgeOp{V: graph.NodeID(v), W: graph.NodeID(w)})
	}
	return out
}

// UpdateStream interleaves nDel deletions and nIns insertions into one
// randomly ordered stream. Deletion targets and insertion targets are
// disjoint by construction, so any batching of the stream applies
// cleanly in order.
func UpdateStream(g *graph.Graph, nDel, nIns int, seed int64) []graph.EdgeOp {
	rng := rand.New(rand.NewSource(seed))
	ops := append(Deletions(g, nDel, rng), Insertions(g, nIns, rng)...)
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// Batches splits ops into consecutive batches of the given size (the
// last batch may be short).
func Batches(ops []graph.EdgeOp, size int) [][]graph.EdgeOp {
	if size <= 0 {
		size = 1
	}
	var out [][]graph.EdgeOp
	for len(ops) > 0 {
		n := size
		if n > len(ops) {
			n = len(ops)
		}
		out = append(out, ops[:n])
		ops = ops[n:]
	}
	return out
}
