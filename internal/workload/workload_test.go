package workload

import (
	"math/rand"
	"testing"

	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/simulation"
)

func TestSyntheticShape(t *testing.T) {
	g := Synthetic(1000, 4000, Labels(15), 1)
	if g.NumNodes() != 1000 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	// Duplicate edges are coalesced, so |E| ≤ 4000 but close.
	if g.NumEdges() < 3500 || g.NumEdges() > 4000 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	// Locality: a block partition should have a small boundary.
	fr, err := partition.Blocks(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fr.VfRatio() > 0.35 {
		t.Fatalf("synthetic graph lacks locality: VfRatio = %f", fr.VfRatio())
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(200, 600, Labels(5), 7)
	b := Synthetic(200, 600, Labels(5), 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	c := Synthetic(200, 600, Labels(5), 8)
	if a.NumEdges() == c.NumEdges() {
		// Edge dedup makes exact equality unlikely across seeds; a match
		// here is suspicious but not definitive — check structure too.
		same := true
		for v := 0; v < 200 && same; v++ {
			av, cv := a.Succ(graph.NodeID(v)), c.Succ(graph.NodeID(v))
			if len(av) != len(cv) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestWebLabelSkew(t *testing.T) {
	g := Web(5000, 20000, 3)
	counts := map[string]int{}
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.LabelName(graph.NodeID(v))]++
	}
	if counts["l0"] <= counts["l14"] {
		t.Fatalf("expected Zipf-like skew: l0=%d l14=%d", counts["l0"], counts["l14"])
	}
}

func TestWebDegreeSkew(t *testing.T) {
	g := Web(5000, 20000, 3)
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(graph.NodeID(v)); d > max {
			max = d
		}
	}
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(max) < 5*avg {
		t.Fatalf("expected hubs: max degree %d vs avg %.1f", max, avg)
	}
}

func TestCitationIsDAG(t *testing.T) {
	g := Citation(2000, 6000, 9)
	if !graph.IsDAG(g) {
		t.Fatal("citation generator must produce a DAG")
	}
}

func TestTreeIsTree(t *testing.T) {
	g := Tree(500, Labels(5), 11)
	roots, ok := graph.IsTree(g)
	if !ok || len(roots) != 1 {
		t.Fatalf("tree generator broken: roots=%v ok=%v", roots, ok)
	}
}

func TestChainClosedMatches(t *testing.T) {
	d := graph.NewDict()
	g := Chain(d, 10, true)
	q := ChainQuery(d)
	m := simulation.HHK(q, g)
	if !m.Ok() || m.NumPairs() != 20 {
		t.Fatalf("closed chain: %v", m)
	}
	g2 := Chain(d, 10, false)
	m2 := simulation.HHK(q, g2)
	if m2.NumPairs() != 0 {
		t.Fatalf("broken chain must be empty: %v", m2)
	}
}

func TestCyclicPattern(t *testing.T) {
	d := graph.NewDict()
	for _, sz := range [][2]int{{4, 8}, {5, 10}, {8, 16}} {
		q := CyclicPattern(d, sz[0], sz[1], Labels(15), 21)
		if q.NumNodes() != sz[0] {
			t.Fatalf("|Vq| = %d", q.NumNodes())
		}
		if q.NumEdges() < sz[0] || q.NumEdges() > sz[1] {
			t.Fatalf("|Eq| = %d for target %d", q.NumEdges(), sz[1])
		}
		if q.IsDAG() {
			t.Fatal("cyclic pattern is a DAG")
		}
	}
}

func TestDAGPatternDiameters(t *testing.T) {
	d := graph.NewDict()
	for diam := 1; diam <= 8; diam++ {
		q, err := DAGPattern(d, 9, 13, diam, Labels(15), int64(diam))
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsDAG() {
			t.Fatalf("d=%d: not a DAG", diam)
		}
		if got := q.MaxRank(); got != diam {
			t.Fatalf("d=%d: MaxRank = %d", diam, got)
		}
	}
	if _, err := DAGPattern(d, 3, 5, 9, Labels(15), 1); err == nil {
		t.Fatal("nv < diam+1 must error")
	}
	q, err := DAGPattern(d, 2, 0, 0, Labels(15), 1)
	if err != nil || q.NumEdges() != 0 {
		t.Fatalf("diam=0 should produce an edgeless pattern: %v %v", q, err)
	}
}

func TestTreePatternIsDAG(t *testing.T) {
	d := graph.NewDict()
	q := TreePattern(d, 6, Labels(5), 2)
	if !q.IsDAG() {
		t.Fatal("tree pattern must be a DAG")
	}
	if q.NumEdges() != 5 {
		t.Fatalf("|Eq| = %d", q.NumEdges())
	}
}

func TestLabels(t *testing.T) {
	ls := Labels(15)
	if len(ls) != 15 || ls[0] != "l0" || ls[14] != "l14" {
		t.Fatalf("Labels = %v", ls)
	}
}

func TestUpdateStream(t *testing.T) {
	g := Synthetic(400, 1200, Labels(5), 9)
	ops := UpdateStream(g, 50, 30, 10)
	nd, ni := 0, 0
	seen := map[uint64]bool{}
	for _, op := range ops {
		k := uint64(op.V)<<32 | uint64(op.W)
		if seen[k] {
			t.Fatalf("duplicate op target (%d,%d)", op.V, op.W)
		}
		seen[k] = true
		if op.Del {
			nd++
			if !g.HasEdge(op.V, op.W) {
				t.Fatalf("deletion of absent edge (%d,%d)", op.V, op.W)
			}
		} else {
			ni++
			if g.HasEdge(op.V, op.W) {
				t.Fatalf("insertion of present edge (%d,%d)", op.V, op.W)
			}
		}
	}
	if nd != 50 || ni != 30 {
		t.Fatalf("stream has %d dels, %d ins; want 50, 30", nd, ni)
	}
	// Deletions are capped at |E|.
	if got := len(Deletions(g, g.NumEdges()+100, rand.New(rand.NewSource(11)))); got != g.NumEdges() {
		t.Fatalf("deletions = %d, want |E| = %d", got, g.NumEdges())
	}
	// Batching covers the stream exactly.
	batches := Batches(ops, 7)
	total := 0
	for _, b := range batches {
		if len(b) == 0 || len(b) > 7 {
			t.Fatalf("bad batch size %d", len(b))
		}
		total += len(b)
	}
	if total != len(ops) {
		t.Fatalf("batches cover %d ops, want %d", total, len(ops))
	}
}
