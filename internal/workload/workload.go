// Package workload generates the data graphs and pattern queries of the
// paper's evaluation (§6).
//
// The real datasets (Yahoo web graph, 3M/15M; AMiner Citation, 1.4M/3M)
// are not redistributable, so the package provides generators that
// reproduce the properties the algorithms are sensitive to — label
// frequencies (candidate-set sizes), degree distribution (local
// refinement cost), acyclicity (dGPMd's precondition), and ID locality
// (so partition.Blocks starts from a low boundary that
// partition.TargetRatio can dial up to the experiments' |Vf| settings).
// The default sizes are scaled ~1/10 from the paper (the internal/bench
// package comment lists them).
package workload

import (
	"fmt"
	"math/rand"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// Labels returns the experiment alphabet: n labels "l0".."l<n-1>".
// The paper's synthetic Σ has 15 labels.
func Labels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("l%d", i)
	}
	return out
}

// Synthetic generates the paper's synthetic G = (V, E, L): nv nodes, ne
// edges, labels drawn uniformly from the given set. Edge endpoints are
// locality-biased (a geometric window around the source) so that block
// partitions have a controllable boundary.
func Synthetic(nv, ne int, labels []string, seed int64) *graph.Graph {
	return SyntheticDict(graph.NewDict(), nv, ne, labels, seed)
}

// SyntheticDict is Synthetic with a caller-provided label dictionary, so
// patterns can share the alphabet.
func SyntheticDict(d *graph.Dict, nv, ne int, labels []string, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderDict(d)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < ne; i++ {
		v := r.Intn(nv)
		w := localTarget(r, v, nv, localityWindow)
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

// localityWindow is the short-range edge span. It is a constant so that
// the boundary of a block partition shrinks as fragments grow — the
// regime where the paper's |Vf| = 25% starting point is reachable.
const localityWindow = 16

// localTarget picks an endpoint near v (short-range edge) with occasional
// long-range jumps, small-world style.
func localTarget(r *rand.Rand, v, nv, window int) int {
	if r.Intn(50) == 0 { // 2% long-range
		return r.Intn(nv)
	}
	w := v + r.Intn(2*window+1) - window
	switch {
	case w < 0:
		return w + nv
	case w >= nv:
		return w - nv
	default:
		return w
	}
}

// Web generates the Yahoo-web-graph stand-in: power-law out-degrees
// (many leaves, few hubs) over 15 "domain" labels, with ID locality.
// The paper's Yahoo graph is (3M, 15M); the benchmarks default to a
// 1/10-scale (300K, 1.5M).
func Web(nv, ne int, seed int64) *graph.Graph {
	return WebDict(graph.NewDict(), nv, ne, seed)
}

// WebDict is Web with a shared dictionary.
func WebDict(d *graph.Dict, nv, ne int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	labels := Labels(15)
	b := graph.NewBuilderDict(d)
	// Zipf-ish label skew: low label indices are common domains.
	for i := 0; i < nv; i++ {
		l := int(float64(len(labels)) * r.Float64() * r.Float64())
		if l >= len(labels) {
			l = len(labels) - 1
		}
		b.AddNode(labels[l])
	}
	// Power-law out-degrees with hubs spread across the ID space: pick a
	// uniform zone, then quadratic preference toward the zone's first IDs
	// (the zone's hubs). Keeps per-fragment work balanced while giving
	// the web graph's degree skew.
	const zone = 1024
	for i := 0; i < ne; i++ {
		base := (r.Intn(nv) / zone) * zone
		off := int(float64(zone) * r.Float64() * r.Float64())
		v := base + off
		if v >= nv {
			v = nv - 1
		}
		w := localTarget(r, v, nv, localityWindow)
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

// Citation generates the AMiner-citation stand-in: a DAG whose edges
// point strictly to smaller IDs ("papers cite older papers"), with
// recency bias, over venue labels. The paper's Citation graph is
// (1.4M, 3M); benchmarks default to 1/10 scale.
func Citation(nv, ne int, seed int64) *graph.Graph {
	return CitationDict(graph.NewDict(), nv, ne, seed)
}

// CitationDict is Citation with a shared dictionary.
func CitationDict(d *graph.Dict, nv, ne int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	labels := Labels(15)
	b := graph.NewBuilderDict(d)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < ne; i++ {
		v := 1 + r.Intn(nv-1)
		// Cite a strictly older paper, biased toward recent ones; rare
		// long-range citations reach back uniformly.
		var gap int
		if r.Intn(50) == 0 {
			gap = 1 + r.Intn(v)
		} else {
			span := 8 * localityWindow
			if span > v {
				span = v
			}
			gap = 1 + int(float64(span)*r.Float64()*r.Float64()*r.Float64())
		}
		w := v - gap
		if w < 0 {
			w = 0
		}
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

// Tree generates a random rooted tree: the parent of node i is a random
// smaller ID within a locality window, so ConnectedTree splits cheaply.
func Tree(nv int, labels []string, seed int64) *graph.Graph {
	return TreeDict(graph.NewDict(), nv, labels, seed)
}

// TreeDict is Tree with a shared dictionary.
func TreeDict(d *graph.Dict, nv int, labels []string, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderDict(d)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 1; i < nv; i++ {
		lo := i - i/8 - 4
		if lo < 0 {
			lo = 0
		}
		p := lo + r.Intn(i-lo)
		b.AddEdge(graph.NodeID(p), graph.NodeID(i))
	}
	return b.MustBuild()
}

// Chain generates the Fig-2 graph G0 family: n (Ai, Bi) pairs with edges
// Ai→Bi and Bi→Ai+1. closed=true adds Bn→A1, producing the cycle where
// Q0 = A⇄B matches everything; closed=false leaves the chain broken so
// falsification must travel the whole chain (the Theorem-1 witness).
// Node IDs alternate A0,B0,A1,B1,..., so partition.Chain with n fragments
// puts one pair per site — the paper's extreme fragmentation.
func Chain(d *graph.Dict, n int, closed bool) *graph.Graph {
	b := graph.NewBuilderDict(d)
	for i := 0; i < n; i++ {
		b.AddNode("A")
		b.AddNode("B")
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
		if i < n-1 {
			b.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2))
		} else if closed {
			b.AddEdge(graph.NodeID(2*i+1), graph.NodeID(0))
		}
	}
	return b.MustBuild()
}

// ChainQuery returns Q0 of Fig. 2: A⇄B.
func ChainQuery(d *graph.Dict) *pattern.Pattern {
	return pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
}

// CyclicPattern generates a connected pattern with nv nodes, ne edges and
// at least one directed cycle, labels drawn from the given set — the
// "cyclic patterns" of Exp-1. ne must be ≥ nv.
func CyclicPattern(d *graph.Dict, nv, ne int, labels []string, seed int64) *pattern.Pattern {
	if ne < nv {
		ne = nv
	}
	r := rand.New(rand.NewSource(seed))
	q := pattern.New(d)
	for i := 0; i < nv; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	// Spanning cycle through all nodes: connected + cyclic.
	perm := r.Perm(nv)
	for i := 0; i < nv; i++ {
		q.MustAddEdge(pattern.QNode(perm[i]), pattern.QNode(perm[(i+1)%nv]))
	}
	for q.NumEdges() < ne {
		a, b := r.Intn(nv), r.Intn(nv)
		q.MustAddEdge(pattern.QNode(a), pattern.QNode(b))
	}
	return q
}

// DAGPattern generates a DAG pattern with nv nodes, ne edges and maximum
// topological rank exactly diam (the d of §5.1): a spine of diam+1 nodes
// fixes the longest chain; remaining nodes get levels in [0, diam] and
// extra edges only go from higher to strictly lower levels, so no chain
// exceeds diam. Requires nv ≥ diam+1.
func DAGPattern(d *graph.Dict, nv, ne, diam int, labels []string, seed int64) (*pattern.Pattern, error) {
	if nv < diam+1 {
		return nil, fmt.Errorf("workload: DAGPattern needs nv ≥ diam+1 (%d < %d)", nv, diam+1)
	}
	r := rand.New(rand.NewSource(seed))
	q := pattern.New(d)
	level := make([]int, nv)
	for i := 0; i < nv; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
		if i <= diam {
			level[i] = diam - i // spine: node 0 at level diam … node diam at 0
		} else {
			level[i] = r.Intn(diam + 1)
		}
	}
	if diam == 0 {
		return q, nil // isolated nodes; no downhill edge can exist
	}
	for i := 0; i < diam; i++ {
		q.MustAddEdge(pattern.QNode(i), pattern.QNode(i+1))
	}
	// Connect non-spine nodes and fill to ne edges, always downhill.
	for i := diam + 1; i < nv; i++ {
		j := pickLevelNeighbor(r, level, i, nv)
		if level[i] > level[j] {
			q.MustAddEdge(pattern.QNode(i), pattern.QNode(j))
		} else {
			q.MustAddEdge(pattern.QNode(j), pattern.QNode(i))
		}
	}
	for tries := 0; q.NumEdges() < ne && tries < 50*ne; tries++ {
		a, b := r.Intn(nv), r.Intn(nv)
		if level[a] > level[b] {
			q.MustAddEdge(pattern.QNode(a), pattern.QNode(b))
		}
	}
	return q, nil
}

// pickLevelNeighbor finds a node with a level different from i's (so an
// edge direction exists).
func pickLevelNeighbor(r *rand.Rand, level []int, i, nv int) int {
	for {
		j := r.Intn(nv)
		if j != i && level[j] != level[i] {
			return j
		}
		// Levels span [0,diam] with diam ≥ 1 thanks to the spine, so a
		// different level always exists.
		if len(level) == 1 {
			return i
		}
	}
}

// TreePattern generates a rooted tree-shaped DAG pattern (useful with
// dGPMt workloads).
func TreePattern(d *graph.Dict, nv int, labels []string, seed int64) *pattern.Pattern {
	r := rand.New(rand.NewSource(seed))
	q := pattern.New(d)
	for i := 0; i < nv; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	for i := 1; i < nv; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(i)), pattern.QNode(i))
	}
	return q
}
