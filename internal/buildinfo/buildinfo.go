// Package buildinfo reports the binary's module version and VCS
// revision, shared by every daemon's -version flag and the gateway's
// /healthz payload.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Version renders the best identification the build embeds: the module
// version when built from a tagged module, otherwise the VCS revision
// (with a "-dirty" suffix for modified trees), otherwise "devel". The Go
// toolchain only stamps VCS data for builds from a checkout, so tests
// and `go run` typically report "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		return fmt.Sprintf("%s (%s)", ver, rev)
	}
	return ver
}
