package dgs

// Mutable deployments: live edge updates with distributed incremental
// maintenance. Apply routes a batch of edge deletions/insertions to the
// owning sites, which mutate their resident fragments in place; one-shot
// Query calls always see the current graph. Watch registers a standing
// query whose match relation is refined incrementally on each deletion
// batch (the O(|AFF|) deletion case of [13], run distributed over the
// falsification messaging), with insertions falling back to a
// re-evaluation of the standing query. See DESIGN.md §"The update
// lifecycle" for the semantics and the interaction with in-flight
// queries.

import (
	"context"
	"errors"
	"sync"

	"dgs/internal/cluster"
	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/simulation"
)

// EdgeOp is one update of an update batch: the deletion or insertion of
// a directed edge between existing nodes (the node set and labels of a
// deployed graph are fixed).
type EdgeOp = graph.EdgeOp

// DeleteOp returns the op deleting edge (v, w).
func DeleteOp(v, w NodeID) EdgeOp { return EdgeOp{Del: true, V: v, W: w} }

// InsertOp returns the op inserting edge (v, w).
func InsertOp(v, w NodeID) EdgeOp { return EdgeOp{V: v, W: w} }

// ApplyStats reports the cost of one Apply call.
type ApplyStats struct {
	// Deletions and Insertions count the batch's net edge ops (ops that
	// cancel within the batch are not distributed).
	Deletions, Insertions int
	// Delta is the fragment-update distribution traffic: the routed edge
	// ops plus the watch/unwatch notifications that maintain the
	// boundary structure.
	Delta Stats
	// Maintenance aggregates the standing queries' refinement traffic —
	// incremental falsification propagation for a deletion-only batch,
	// full re-evaluation when the batch inserts edges. Standing queries
	// sharing one maintenance session (planner-on deployments) pay their
	// session's cost once here, not once per handle.
	Maintenance Stats
	// Reevaluated counts standing queries that fell back to full
	// re-evaluation (insertions in the batch, or a previously failed
	// refinement).
	Reevaluated int
}

func addStats(a *Stats, b Stats) {
	a.Wall += b.Wall
	a.DataBytes += b.DataBytes
	a.DataMsgs += b.DataMsgs
	a.ControlBytes += b.ControlBytes
	a.ResultBytes += b.ResultBytes
	a.Rounds += b.Rounds
	a.WireBytes += b.WireBytes
	if b.MaxSiteBusy > a.MaxSiteBusy {
		a.MaxSiteBusy = b.MaxSiteBusy
	}
}

// Apply mutates the deployed graph with a batch of edge updates. The
// batch is validated first (deleting an absent edge or inserting a
// present one fails the whole batch, before anything is distributed),
// then routed to the sites owning each edge's source node, which update
// their resident fragments in place. Standing queries registered with
// Watch are refreshed before Apply returns: a deletion-only batch is
// absorbed incrementally, a batch with insertions re-evaluates them.
// Apply serializes against Query/Watch: in-flight queries finish against
// the pre-batch graph, queries issued after Apply returns see the
// post-batch graph.
//
// ctx gates only the standing-query refresh (fragment updates always
// run to completion, keeping the graph state consistent): on
// cancellation the unrefreshed queries stay registered, serve their last
// relation, and are re-evaluated on the next Apply or Refresh.
func (d *Deployment) Apply(ctx context.Context, ops []EdgeOp) (ApplyStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ApplyStats{}, errorf("apply: %w", ErrClosed)
	}
	d.state.Lock()
	defer d.state.Unlock()

	ov := d.part.fr.Overlay()
	dels, ins, err := graph.NormalizeOps(ov, ops)
	if err != nil {
		return ApplyStats{}, errorf("apply: %w", err)
	}
	st := ApplyStats{Deletions: len(dels), Insertions: len(ins)}
	if len(dels) == 0 && len(ins) == 0 {
		return st, nil
	}

	// Distribute to the owning sites and commit the overlay.
	deltaStats, err := dgpm.ApplyUpdates(d.c, d.part.fr, dels, ins)
	if err != nil {
		// The batch died mid-distribution: some sites may have mutated
		// their fragments, others not, and the driver's state is still
		// pre-batch. Mark the deployment so the next recovery re-ships
		// EVERY fragment (not just the lost ones), restoring all sites
		// to the driver's consistent pre-batch graph. The cause decides
		// retryability: a lost site wraps ErrSiteLost, a shutdown wraps
		// ErrClosed.
		d.applyInterrupted = true
		return st, errorf("apply: %w while distributing updates", publicErr(err))
	}
	st.Delta = fromCluster(deltaStats)
	if d.remote {
		// The maintenance session mutated the daemons' resident copies;
		// replay the batch on the driver's fragmentation so boundary
		// metadata (and any future re-split) stays in lockstep.
		if err := partition.ApplyBatchLocal(d.part.fr, dels, ins); err != nil {
			panic("dgs: local replay diverged from validation: " + err.Error())
		}
	} else {
		// In-process sites mutate the driver's own fragments; only the
		// derived boundary statistics need refreshing.
		d.part.fr.RecountBoundary()
	}
	for _, e := range dels {
		if err := ov.DeleteEdge(e[0], e[1]); err != nil {
			panic("dgs: overlay diverged from validation: " + err.Error())
		}
	}
	for _, e := range ins {
		if err := ov.InsertEdge(e[0], e[1]); err != nil {
			panic("dgs: overlay diverged from validation: " + err.Error())
		}
	}
	// The graph changed: bump the version under the exclusive lock so
	// caches keyed on Version see a strictly newer graph from here on.
	d.version.Add(1)
	d.om.applies.Inc()

	// Refresh the standing queries. A refresh failure (ctx cancellation)
	// must not leave any other handle silently desynced: the graph is
	// already committed, so every watcher not successfully refreshed
	// against THIS batch is marked stale and re-evaluated by the next
	// Apply or Refresh.
	//
	// A site lost mid-refresh is the one failure that must NOT fail the
	// Apply: the batch is committed on the driver, so an error here would
	// tell a retrying caller the batch never landed and make it
	// re-submit ops the overlay has already absorbed. The watcher is
	// stale either way, and the recovery that clears the loss
	// re-registers every standing query against the committed graph
	// (failover.go); any other error still surfaces.
	d.watchMu.Lock()
	watchers := make([]*Maintained, 0, len(d.watchers))
	for w := range d.watchers {
		watchers = append(watchers, w)
	}
	d.watchMu.Unlock()
	var firstErr error
	for _, w := range watchers {
		if firstErr != nil {
			w.markStale()
			continue
		}
		reeval, wst, err := w.refresh(ctx, dels, len(ins) > 0)
		if err != nil {
			firstErr = err // refresh marked w stale itself
			continue
		}
		if reeval {
			st.Reevaluated++
		}
		addStats(&st.Maintenance, wst)
	}
	if firstErr != nil && !errors.Is(firstErr, cluster.ErrSiteLost) {
		return st, errorf("apply: standing query refresh: %w", publicErr(firstErr))
	}
	return st, nil
}

// Watch registers q as a standing query: it is evaluated now (with the
// maintenance engine — dGPM with incremental evaluation, push disabled)
// and its match relation is kept current by every subsequent Apply. The
// returned handle serves the relation without further distributed work;
// Close it when the standing query is no longer needed.
//
// On a planner-on deployment, standing queries share ONE maintenance
// session: each distinct pattern (modulo node renaming — canonical-form
// equality) is one block of a disjoint pattern union, and a Watch whose
// pattern is equivalent to a live one joins its block without any
// distributed work at all. A pattern whose label is absent from the
// graph never opens a session: its handle serves ∅ statically, since
// the node set and labels of a deployed graph are fixed. With
// WithPlannerDisabled, every Watch holds its own session (the unshared
// baseline).
func (d *Deployment) Watch(ctx context.Context, q *Pattern) (*Maintained, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, errorf("watch: nil pattern")
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, errorf("watch: %w", ErrClosed)
	}
	// Holding the read lock across evaluation AND registration makes the
	// handle atomic with respect to Apply: a standing query is either
	// registered before a batch (and refreshed by it) or evaluated
	// against the post-batch graph.
	d.state.RLock()
	defer d.state.RUnlock()

	var w *Maintained
	if pl := d.planFor(q.p); pl != nil && pl.Empty {
		// Absent label: Q(G) = ∅ now and after every future batch (edge
		// updates cannot mint label occurrences), so the handle is
		// static — no session, no refresh work, never stale.
		w = &Maintained{d: d, q: q, cur: &Match{m: emptyRelation(q.p.NumNodes())}}
	} else if d.planner == "" {
		var err error
		if w, err = d.watchUnshared(ctx, q); err != nil {
			return nil, errorf("watch: %w", err)
		}
	} else {
		var err error
		if w, err = d.watchShared(ctx, q); err != nil {
			return nil, errorf("watch: %w", err)
		}
	}
	d.watchMu.Lock()
	d.watchers[w] = struct{}{}
	d.watchMu.Unlock()
	return w, nil
}

// watchUnshared gives the standing query a private one-block shard —
// its own maintenance session, the planner-off baseline.
func (d *Deployment) watchUnshared(ctx context.Context, q *Pattern) (*Maintained, error) {
	st, err := dgpm.NewStanding(ctx, d.c, d.part.fr, []*pattern.Pattern{q.p}, nil)
	if err != nil {
		return nil, err
	}
	sh := &watchShard{
		d:         d,
		st:        st,
		refreshed: d.version.Load(),
		last:      fromCluster(st.LastStats()),
	}
	b := &watchBlock{q: q.p, perm: identityPerm(q.p.NumNodes()), refs: 1}
	sh.blocks = []*watchBlock{b}
	return newHandle(d, q, sh, b, identityPerm(q.p.NumNodes())), nil
}

// watchShared adds the standing query to the deployment's single shared
// shard: equivalent patterns join a live block for free; a new distinct
// pattern rebuilds the union session over the live blocks plus itself
// (one full evaluation — the same price Watch always paid — after which
// every batch is absorbed once for all members).
func (d *Deployment) watchShared(ctx context.Context, q *Pattern) (*Maintained, error) {
	c := plan.Canonicalize(q.p)
	d.shardMu.Lock()
	sh := d.shard
	if sh == nil {
		sh = &watchShard{d: d}
		d.shard = sh
	}
	d.shardMu.Unlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Equivalent to a live block? Join it: compose the two canonical
	// permutations into a node remap and read the leader's relation.
	for _, b := range sh.blocks {
		if b.refs > 0 && b.key == c.Key {
			b.refs++
			remap := composeRemap(b.perm, c.Perm)
			w := newHandle(d, q, sh, b, remap)
			return w, nil
		}
	}
	// Distinct pattern: rebuild the union session from the live blocks
	// plus the newcomer (dead blocks are pruned here). The old session
	// stays untouched until the new one is up, so a failed Watch leaves
	// every existing handle exactly as it was.
	live := make([]*watchBlock, 0, len(sh.blocks)+1)
	for _, b := range sh.blocks {
		if b.refs > 0 {
			live = append(live, b)
		}
	}
	nb := &watchBlock{key: c.Key, q: q.p, perm: c.Perm, refs: 1}
	live = append(live, nb)
	qs := make([]*pattern.Pattern, len(live))
	for i, b := range live {
		qs[i] = b.q
	}
	st, err := dgpm.NewStanding(ctx, d.c, d.part.fr, qs, d.planFor)
	if err != nil {
		return nil, err
	}
	if sh.st != nil {
		sh.st.Close()
	}
	sh.st = st
	sh.blocks = live
	sh.refreshed = d.version.Load()
	sh.stale = false
	sh.last = fromCluster(st.LastStats())
	return newHandle(d, q, sh, nb, identityPerm(q.p.NumNodes())), nil
}

// newHandle builds a Maintained over its shard block, snapshotting the
// current relation. Callers must hold d.state (read) — and, for shared
// shards, arrange that no concurrent rebuild races the snapshot (the
// shared path holds sh.mu).
func newHandle(d *Deployment, q *Pattern, sh *watchShard, b *watchBlock, remap []int) *Maintained {
	w := &Maintained{d: d, q: q, shard: sh, block: b, remap: remap}
	if m := sh.snapshotLocked(b, remap); m != nil {
		w.cur = &Match{m: m}
	} else {
		w.cur = &Match{m: emptyRelation(q.p.NumNodes())}
	}
	w.last = sh.last
	return w
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// composeRemap maps the handle pattern's nodes onto the leader
// pattern's: node u of the joiner occupies canonical position
// joinPerm[u], which the leader fills with the node whose leadPerm
// entry is that position.
func composeRemap(leadPerm, joinPerm []int) []int {
	inv := make([]int, len(leadPerm))
	for u, pos := range leadPerm {
		inv[pos] = u
	}
	remap := make([]int, len(joinPerm))
	for u, pos := range joinPerm {
		remap[u] = inv[pos]
	}
	return remap
}

// emptyRelation is the canonical empty match relation over n query
// nodes.
func emptyRelation(n int) *simulation.Match {
	return simulation.NewMatch(n).Canonical()
}

// watchShard is a set of standing queries fed by one dgpm.Standing
// session: its blocks, one per distinct pattern, are read by one or
// more Maintained handles each. Planner-on deployments keep a single
// shared shard; planner-off handles get private one-block shards. All
// fields after d are guarded by mu.
type watchShard struct {
	d *Deployment

	mu     sync.Mutex
	st     *dgpm.Standing // nil once every block's handles closed
	blocks []*watchBlock  // aligned with st's member patterns
	// refreshed is the graph version the session last absorbed. Apply
	// touches every handle, but a shared session must pay each batch
	// once: later handles of the same batch hit the version guard and
	// only re-read their block.
	refreshed uint64
	// stale marks a failed (cancelled) refresh; the next window
	// re-evaluates.
	stale bool
	// lastWasReeval records whether the last window was a full
	// re-evaluation (for ApplyStats.Reevaluated accounting on
	// non-driving handles).
	lastWasReeval bool
	// last is the cost of the last refresh window.
	last Stats
}

// refresh absorbs one committed batch (graph version ver) into the
// session, once: the first handle of the batch drives the work and gets
// its stats back for aggregation; subsequent handles see the version
// guard and return zero stats. A shard that missed a version entirely
// (its handles were marked stale mid-Apply) cannot trust this batch's
// deletions alone and re-evaluates.
func (sh *watchShard) refresh(ctx context.Context, ver uint64, dels [][2]NodeID, hasIns bool) (reeval bool, st Stats, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.st == nil {
		return false, Stats{}, nil
	}
	if sh.refreshed == ver && !sh.stale {
		return sh.lastWasReeval, Stats{}, nil
	}
	reeval = hasIns || sh.stale || sh.refreshed+1 != ver
	if reeval {
		err = sh.st.Reevaluate(ctx)
	} else {
		err = sh.st.ApplyDeletions(ctx, dels)
	}
	sh.lastWasReeval = reeval
	if err != nil {
		sh.stale = true
		return reeval, Stats{}, err
	}
	sh.stale = false
	sh.refreshed = ver
	sh.last = fromCluster(sh.st.LastStats())
	return reeval, sh.last, nil
}

// reevaluate unconditionally re-runs the standing fixpoint (user
// Refresh, failover recovery — the version guard must not skip it: the
// graph may be unchanged while the per-site engines are gone).
func (sh *watchShard) reevaluate(ctx context.Context, ver uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.st == nil {
		return nil
	}
	err := sh.st.Reevaluate(ctx)
	sh.lastWasReeval = true
	if err != nil {
		sh.stale = true
		return err
	}
	sh.stale = false
	sh.refreshed = ver
	sh.last = fromCluster(sh.st.LastStats())
	return nil
}

// snapshot reads block b's relation remapped into a handle's node
// order; nil if the block is gone (closed shard).
func (sh *watchShard) snapshot(b *watchBlock, remap []int) *simulation.Match {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.snapshotLocked(b, remap)
}

func (sh *watchShard) snapshotLocked(b *watchBlock, remap []int) *simulation.Match {
	if sh.st == nil {
		return nil
	}
	for k, o := range sh.blocks {
		if o == b {
			cur := sh.st.Current(k)
			m := simulation.NewMatch(len(remap))
			for u, lu := range remap {
				m.Sets[u] = cur.Sets[lu]
			}
			return m
		}
	}
	return nil
}

func (sh *watchShard) lastStats() Stats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.last
}

// release drops one handle's reference to its block. A block at zero
// references stops being evaluated at the next rebuild; once every
// block is dead the session itself is closed (the next Watch starts a
// fresh one).
func (sh *watchShard) release(b *watchBlock) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if b.refs--; b.refs > 0 {
		return
	}
	for _, o := range sh.blocks {
		if o.refs > 0 {
			return
		}
	}
	if sh.st != nil {
		sh.st.Close()
		sh.st = nil
	}
	sh.blocks = nil
}

// watchBlock is one member pattern of a shard: the leader pattern the
// session evaluates, its canonical form, and how many open handles read
// it. Guarded by the owning shard's mu.
type watchBlock struct {
	key  string           // canonical key ("" for private planner-off shards)
	q    *pattern.Pattern // leader pattern, as evaluated by the session
	perm []int            // leader node -> canonical position
	refs int
}

// Maintained is a standing query's handle: a match relation kept current
// by the deployment's Apply batches.
type Maintained struct {
	d *Deployment
	q *Pattern

	// shard/block/remap locate this handle's relation inside its
	// maintenance session; remap[u] is the leader-pattern node matching
	// the handle pattern's node u. A nil shard is the static-∅ handle of
	// an absent-label pattern. Immutable after Watch.
	shard *watchShard
	block *watchBlock
	remap []int

	mu     sync.Mutex
	cur    *Match
	last   Stats
	stale  bool
	closed bool
}

// Pattern returns the standing query.
func (w *Maintained) Pattern() *Pattern { return w.q }

// Current returns the maintained match relation as of the last
// successfully applied batch.
func (w *Maintained) Current() *Match {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// LastStats reports the distributed cost of the last refresh window:
// the initial evaluation, a deletion batch's incremental refinement, or
// an insertion batch's re-evaluation. Handles sharing a session report
// the shared window's cost.
func (w *Maintained) LastStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Stale reports whether the relation is out of date because a refresh
// was cancelled; the next Apply or Refresh re-evaluates.
func (w *Maintained) Stale() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stale
}

// markStale flags the relation as out of date without refreshing it
// (an earlier handle's refresh failed mid-Apply; the batch is already
// committed to the graph).
func (w *Maintained) markStale() {
	w.mu.Lock()
	if !w.closed && w.shard != nil {
		w.stale = true
	}
	w.mu.Unlock()
}

// refresh brings the standing relation up to date with one committed
// batch. It returns whether a full re-evaluation ran, and the cost to
// aggregate — zero for handles whose shard already absorbed the batch.
func (w *Maintained) refresh(ctx context.Context, dels [][2]NodeID, hasIns bool) (reeval bool, st Stats, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.shard == nil {
		// Closed, or static-∅: nothing to do (an absent label cannot be
		// matched into existence by edge updates).
		return false, Stats{}, nil
	}
	reeval, st, err = w.shard.refresh(ctx, w.d.version.Load(), dels, hasIns)
	if err != nil {
		w.stale = true
		return reeval, Stats{}, err
	}
	w.stale = false
	if m := w.shard.snapshot(w.block, w.remap); m != nil {
		w.cur = &Match{m: m}
	}
	w.last = w.shard.lastStats()
	return reeval, st, nil
}

// Refresh re-evaluates the standing query against the current graph now
// — useful after a cancelled Apply left the handle stale, and the
// recovery path for sessions lost with a failed site.
func (w *Maintained) Refresh(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w.d.state.RLock()
	defer w.d.state.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errorf("refresh: standing query is closed")
	}
	if w.shard == nil {
		return nil
	}
	if err := w.shard.reevaluate(ctx, w.d.version.Load()); err != nil {
		w.stale = true
		return errorf("refresh: %w", err)
	}
	w.stale = false
	if m := w.shard.snapshot(w.block, w.remap); m != nil {
		w.cur = &Match{m: m}
	}
	w.last = w.shard.lastStats()
	return nil
}

// Close unregisters the standing query and releases its share of the
// maintenance session. The last relation remains readable via Current.
// Idempotent.
func (w *Maintained) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.shard != nil {
		w.shard.release(w.block)
	}
	w.d.watchMu.Lock()
	delete(w.d.watchers, w)
	w.d.watchMu.Unlock()
	return nil
}
