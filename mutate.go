package dgs

// Mutable deployments: live edge updates with distributed incremental
// maintenance. Apply routes a batch of edge deletions/insertions to the
// owning sites, which mutate their resident fragments in place; one-shot
// Query calls always see the current graph. Watch registers a standing
// query whose match relation is refined incrementally on each deletion
// batch (the O(|AFF|) deletion case of [13], run distributed over the
// falsification messaging), with insertions falling back to a
// re-evaluation of the standing query. See DESIGN.md §"The update
// lifecycle" for the semantics and the interaction with in-flight
// queries.

import (
	"context"
	"sync"

	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/partition"
)

// EdgeOp is one update of an update batch: the deletion or insertion of
// a directed edge between existing nodes (the node set and labels of a
// deployed graph are fixed).
type EdgeOp = graph.EdgeOp

// DeleteOp returns the op deleting edge (v, w).
func DeleteOp(v, w NodeID) EdgeOp { return EdgeOp{Del: true, V: v, W: w} }

// InsertOp returns the op inserting edge (v, w).
func InsertOp(v, w NodeID) EdgeOp { return EdgeOp{V: v, W: w} }

// ApplyStats reports the cost of one Apply call.
type ApplyStats struct {
	// Deletions and Insertions count the batch's net edge ops (ops that
	// cancel within the batch are not distributed).
	Deletions, Insertions int
	// Delta is the fragment-update distribution traffic: the routed edge
	// ops plus the watch/unwatch notifications that maintain the
	// boundary structure.
	Delta Stats
	// Maintenance aggregates the standing queries' refinement traffic —
	// incremental falsification propagation for a deletion-only batch,
	// full re-evaluation when the batch inserts edges.
	Maintenance Stats
	// Reevaluated counts standing queries that fell back to full
	// re-evaluation (insertions in the batch, or a previously failed
	// refinement).
	Reevaluated int
}

func addStats(a *Stats, b Stats) {
	a.Wall += b.Wall
	a.DataBytes += b.DataBytes
	a.DataMsgs += b.DataMsgs
	a.ControlBytes += b.ControlBytes
	a.ResultBytes += b.ResultBytes
	a.Rounds += b.Rounds
	a.WireBytes += b.WireBytes
	if b.MaxSiteBusy > a.MaxSiteBusy {
		a.MaxSiteBusy = b.MaxSiteBusy
	}
}

// Apply mutates the deployed graph with a batch of edge updates. The
// batch is validated first (deleting an absent edge or inserting a
// present one fails the whole batch, before anything is distributed),
// then routed to the sites owning each edge's source node, which update
// their resident fragments in place. Standing queries registered with
// Watch are refreshed before Apply returns: a deletion-only batch is
// absorbed incrementally, a batch with insertions re-evaluates them.
// Apply serializes against Query/Watch: in-flight queries finish against
// the pre-batch graph, queries issued after Apply returns see the
// post-batch graph.
//
// ctx gates only the standing-query refresh (fragment updates always
// run to completion, keeping the graph state consistent): on
// cancellation the unrefreshed queries stay registered, serve their last
// relation, and are re-evaluated on the next Apply or Refresh.
func (d *Deployment) Apply(ctx context.Context, ops []EdgeOp) (ApplyStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ApplyStats{}, errorf("apply: %w", ErrClosed)
	}
	d.state.Lock()
	defer d.state.Unlock()

	ov := d.part.fr.Overlay()
	dels, ins, err := graph.NormalizeOps(ov, ops)
	if err != nil {
		return ApplyStats{}, errorf("apply: %w", err)
	}
	st := ApplyStats{Deletions: len(dels), Insertions: len(ins)}
	if len(dels) == 0 && len(ins) == 0 {
		return st, nil
	}

	// Distribute to the owning sites and commit the overlay.
	deltaStats, err := dgpm.ApplyUpdates(d.c, d.part.fr, dels, ins)
	if err != nil {
		// The batch died mid-distribution: some sites may have mutated
		// their fragments, others not, and the driver's state is still
		// pre-batch. Mark the deployment so the next recovery re-ships
		// EVERY fragment (not just the lost ones), restoring all sites
		// to the driver's consistent pre-batch graph. The cause decides
		// retryability: a lost site wraps ErrSiteLost, a shutdown wraps
		// ErrClosed.
		d.applyInterrupted = true
		return st, errorf("apply: %w while distributing updates", publicErr(err))
	}
	st.Delta = fromCluster(deltaStats)
	if d.remote {
		// The maintenance session mutated the daemons' resident copies;
		// replay the batch on the driver's fragmentation so boundary
		// metadata (and any future re-split) stays in lockstep.
		if err := partition.ApplyBatchLocal(d.part.fr, dels, ins); err != nil {
			panic("dgs: local replay diverged from validation: " + err.Error())
		}
	} else {
		// In-process sites mutate the driver's own fragments; only the
		// derived boundary statistics need refreshing.
		d.part.fr.RecountBoundary()
	}
	for _, e := range dels {
		if err := ov.DeleteEdge(e[0], e[1]); err != nil {
			panic("dgs: overlay diverged from validation: " + err.Error())
		}
	}
	for _, e := range ins {
		if err := ov.InsertEdge(e[0], e[1]); err != nil {
			panic("dgs: overlay diverged from validation: " + err.Error())
		}
	}
	// The graph changed: bump the version under the exclusive lock so
	// caches keyed on Version see a strictly newer graph from here on.
	d.version.Add(1)

	// Refresh the standing queries. A refresh failure (ctx cancellation)
	// must not leave any other handle silently desynced: the graph is
	// already committed, so every watcher not successfully refreshed
	// against THIS batch is marked stale and re-evaluated by the next
	// Apply or Refresh.
	d.watchMu.Lock()
	watchers := make([]*Maintained, 0, len(d.watchers))
	for w := range d.watchers {
		watchers = append(watchers, w)
	}
	d.watchMu.Unlock()
	var firstErr error
	for _, w := range watchers {
		if firstErr != nil {
			w.markStale()
			continue
		}
		reeval, wst, err := w.refresh(ctx, dels, len(ins) > 0)
		if err != nil {
			firstErr = err // refresh marked w stale itself
			continue
		}
		if reeval {
			st.Reevaluated++
		}
		addStats(&st.Maintenance, wst)
	}
	if firstErr != nil {
		return st, errorf("apply: standing query refresh: %w", publicErr(firstErr))
	}
	return st, nil
}

// Watch registers q as a standing query: it is evaluated now (with the
// maintenance engine — dGPM with incremental evaluation, push disabled)
// and its match relation is kept current by every subsequent Apply. The
// returned handle serves the relation without further distributed work;
// Close it when the standing query is no longer needed.
func (d *Deployment) Watch(ctx context.Context, q *Pattern) (*Maintained, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, errorf("watch: nil pattern")
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, errorf("watch: %w", ErrClosed)
	}
	// Holding the read lock across evaluation AND registration makes the
	// handle atomic with respect to Apply: a standing query is either
	// registered before a batch (and refreshed by it) or evaluated
	// against the post-batch graph.
	d.state.RLock()
	defer d.state.RUnlock()
	mnt, err := dgpm.NewMaintainer(ctx, d.c, q.p, d.part.fr)
	if err != nil {
		return nil, errorf("watch: %w", err)
	}
	w := &Maintained{
		d:    d,
		q:    q,
		mnt:  mnt,
		cur:  &Match{m: mnt.Current()},
		last: fromCluster(mnt.LastStats()),
	}
	d.watchMu.Lock()
	d.watchers[w] = struct{}{}
	d.watchMu.Unlock()
	return w, nil
}

// Maintained is a standing query's handle: a match relation kept current
// by the deployment's Apply batches.
type Maintained struct {
	d *Deployment
	q *Pattern

	mu     sync.Mutex
	mnt    *dgpm.Maintainer
	cur    *Match
	last   Stats
	stale  bool
	closed bool
}

// Pattern returns the standing query.
func (w *Maintained) Pattern() *Pattern { return w.q }

// Current returns the maintained match relation as of the last
// successfully applied batch.
func (w *Maintained) Current() *Match {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// LastStats reports the distributed cost of the last refresh window:
// the initial evaluation, a deletion batch's incremental refinement, or
// an insertion batch's re-evaluation.
func (w *Maintained) LastStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Stale reports whether the relation is out of date because a refresh
// was cancelled; the next Apply or Refresh re-evaluates.
func (w *Maintained) Stale() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stale
}

// markStale flags the relation as out of date without refreshing it
// (an earlier handle's refresh failed mid-Apply; the batch is already
// committed to the graph).
func (w *Maintained) markStale() {
	w.mu.Lock()
	if !w.closed {
		w.stale = true
	}
	w.mu.Unlock()
}

// refresh brings the standing relation up to date with one batch. It
// returns whether a full re-evaluation ran.
func (w *Maintained) refresh(ctx context.Context, dels [][2]NodeID, hasIns bool) (reeval bool, st Stats, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false, Stats{}, nil
	}
	reeval = hasIns || w.stale
	if reeval {
		err = w.mnt.Reevaluate(ctx)
	} else {
		err = w.mnt.ApplyDeletions(ctx, dels)
	}
	if err != nil {
		w.stale = true
		return reeval, Stats{}, err
	}
	w.stale = false
	w.cur = &Match{m: w.mnt.Current()}
	w.last = fromCluster(w.mnt.LastStats())
	return reeval, w.last, nil
}

// Refresh re-evaluates the standing query against the current graph now
// — useful after a cancelled Apply left the handle stale.
func (w *Maintained) Refresh(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w.d.state.RLock()
	defer w.d.state.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errorf("refresh: standing query is closed")
	}
	if err := w.mnt.Reevaluate(ctx); err != nil {
		w.stale = true
		return errorf("refresh: %w", err)
	}
	w.stale = false
	w.cur = &Match{m: w.mnt.Current()}
	w.last = fromCluster(w.mnt.LastStats())
	return nil
}

// Close unregisters the standing query and releases its session. The
// last relation remains readable via Current. Idempotent.
func (w *Maintained) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mnt.Close()
	w.mu.Unlock()
	w.d.watchMu.Lock()
	delete(w.d.watchers, w)
	w.d.watchMu.Unlock()
	return nil
}
