// Benchmarks, one per evaluation figure of the paper (Fig. 6(a)–6(p)).
//
// Each BenchmarkFig* exercises the same algorithms, workload family and
// swept parameter as its figure, at a reduced size so `go test -bench=.`
// stays tractable; the full sweeps with the paper's axes are produced by
// `go run ./cmd/benchfig -all`. PT corresponds to ns/op; DS is reported
// via the custom metrics data_KB/op and msgs/op.
//
// Matching the paper's methodology, every figure benchmark deploys its
// fragmentation ONCE (with the EC2-like link model, so ns/op reflects
// network-inclusive response time) and serves all measured queries from
// the resident fragments; BenchmarkDeployAmortization quantifies what
// that residency is worth against a per-query deploy.
package dgs

import (
	"context"
	"fmt"
	"testing"
)

const (
	benchWebNV = 20_000
	benchWebNE = 100_000
	benchCitNV = 10_000
	benchCitNE = 22_000
	benchSynNV = 30_000
	benchSynNE = 120_000
)

// benchDeploy makes the partition resident with the EC2-like link model
// for the benchmark's lifetime.
func benchDeploy(b *testing.B, part *Partition, opts ...DeployOption) *Deployment {
	b.Helper()
	dep, err := Deploy(part, append([]DeployOption{WithNetwork(EC2Network())}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	return dep
}

// benchQuery measures one (algorithm, query) pair against a resident
// deployment.
func benchQuery(b *testing.B, dep *Deployment, q *Pattern, opts ...QueryOption) {
	b.Helper()
	var bytes, msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dep.Query(context.Background(), q, opts...)
		if err != nil {
			b.Fatal(err)
		}
		bytes += res.Stats.DataBytes
		msgs += res.Stats.DataMsgs
	}
	b.ReportMetric(float64(bytes)/float64(b.N)/1024, "data_KB/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

func webWorld(b *testing.B, nf int, vf float64) (*Dict, *Graph, *Partition) {
	b.Helper()
	dict := NewDict()
	g := GenWeb(dict, benchWebNV, benchWebNE, 1)
	part, err := PartitionTargetRatio(g, nf, ByVf, vf, 1)
	if err != nil {
		b.Fatal(err)
	}
	return dict, g, part
}

func citWorld(b *testing.B, nf int, vf float64) (*Dict, *Graph, *Partition) {
	b.Helper()
	dict := NewDict()
	g := GenCitation(dict, benchCitNV, benchCitNE, 1)
	part, err := PartitionTargetRatio(g, nf, ByVf, vf, 1)
	if err != nil {
		b.Fatal(err)
	}
	return dict, g, part
}

// exp1Algos mirrors Fig. 6(a)-(f): dGPM and the baselines on cyclic
// queries over the web graph.
var exp1Algos = []Algorithm{AlgoDGPM, AlgoDisHHK, AlgoDGPMNoOpt, AlgoDMes, AlgoMatch}

// BenchmarkFig6ab — PT/DS vs |F| (Fig. 6(a), 6(b)).
func BenchmarkFig6ab(b *testing.B) {
	for _, nf := range []int{4, 8, 16} {
		dict, _, part := webWorld(b, nf, 0.25)
		dep := benchDeploy(b, part)
		q := GenCyclicPatternOver(dict, 5, 10, 4, 100)
		for _, algo := range exp1Algos {
			b.Run(fmt.Sprintf("F=%d/%s", nf, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkFig6cd — PT/DS vs |Q| (Fig. 6(c), 6(d)).
func BenchmarkFig6cd(b *testing.B) {
	dict, _, part := webWorld(b, 8, 0.25)
	dep := benchDeploy(b, part)
	for _, sz := range [][2]int{{4, 8}, {6, 12}, {8, 16}} {
		q := GenCyclicPatternOver(dict, sz[0], sz[1], 4, 100)
		for _, algo := range exp1Algos {
			b.Run(fmt.Sprintf("Q=(%d,%d)/%s", sz[0], sz[1], algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkFig6ef — PT/DS vs |Vf| (Fig. 6(e), 6(f)).
func BenchmarkFig6ef(b *testing.B) {
	dict := NewDict()
	g := GenWeb(dict, benchWebNV, benchWebNE, 1)
	q := GenCyclicPatternOver(dict, 5, 10, 4, 100)
	for _, vf := range []float64{0.25, 0.40, 0.50} {
		part, err := PartitionTargetRatio(g, 8, ByVf, vf, 1)
		if err != nil {
			b.Fatal(err)
		}
		dep := benchDeploy(b, part)
		for _, algo := range exp1Algos {
			b.Run(fmt.Sprintf("Vf=%.2f/%s", vf, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// exp2Algos mirrors Fig. 6(g)-(l): dGPMd and baselines on the citation DAG.
var exp2Algos = []Algorithm{AlgoDGPMd, AlgoDisHHK, AlgoDMes, AlgoMatch}

// BenchmarkFig6gh — PT/DS vs query diameter d (Fig. 6(g), 6(h)).
func BenchmarkFig6gh(b *testing.B) {
	dict, _, part := citWorld(b, 8, 0.25)
	dep := benchDeploy(b, part, WithQueryDefaults(WithGraphIsDAG()))
	for _, d := range []int{2, 4, 8} {
		q, err := GenDAGPattern(dict, 9, 13, d, 200)
		if err != nil {
			b.Fatal(err)
		}
		for _, algo := range exp2Algos {
			b.Run(fmt.Sprintf("d=%d/%s", d, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkFig6ij — PT/DS vs |F| on the DAG (Fig. 6(i), 6(j)).
func BenchmarkFig6ij(b *testing.B) {
	dict := NewDict()
	g := GenCitation(dict, benchCitNV, benchCitNE, 1)
	q, err := GenDAGPattern(dict, 9, 13, 4, 200)
	if err != nil {
		b.Fatal(err)
	}
	for _, nf := range []int{4, 8, 16} {
		part, perr := PartitionTargetRatio(g, nf, ByVf, 0.25, 1)
		if perr != nil {
			b.Fatal(perr)
		}
		dep := benchDeploy(b, part, WithQueryDefaults(WithGraphIsDAG()))
		for _, algo := range exp2Algos {
			b.Run(fmt.Sprintf("F=%d/%s", nf, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkFig6kl — PT/DS vs |Vf| on the DAG (Fig. 6(k), 6(l)).
func BenchmarkFig6kl(b *testing.B) {
	dict := NewDict()
	g := GenCitation(dict, benchCitNV, benchCitNE, 1)
	q, err := GenDAGPattern(dict, 9, 13, 4, 200)
	if err != nil {
		b.Fatal(err)
	}
	for _, vf := range []float64{0.25, 0.50} {
		part, perr := PartitionTargetRatio(g, 8, ByVf, vf, 1)
		if perr != nil {
			b.Fatal(perr)
		}
		dep := benchDeploy(b, part, WithQueryDefaults(WithGraphIsDAG()))
		for _, algo := range exp2Algos {
			b.Run(fmt.Sprintf("Vf=%.2f/%s", vf, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// exp3Algos mirrors Fig. 6(m)-(p): synthetic graphs, Match omitted as in
// the paper ("not capable to cope with large |G|").
var exp3Algos = []Algorithm{AlgoDGPM, AlgoDisHHK, AlgoDGPMNoOpt, AlgoDMes}

// BenchmarkFig6mn — PT/DS vs |F| on synthetic graphs (Fig. 6(m), 6(n)).
func BenchmarkFig6mn(b *testing.B) {
	dict := NewDict()
	g := GenSynthetic(dict, benchSynNV, benchSynNE, 1)
	q := GenCyclicPatternOver(dict, 5, 10, 4, 300)
	for _, nf := range []int{8, 16} {
		part, err := PartitionTargetRatio(g, nf, ByVf, 0.20, 1)
		if err != nil {
			b.Fatal(err)
		}
		dep := benchDeploy(b, part)
		for _, algo := range exp3Algos {
			b.Run(fmt.Sprintf("F=%d/%s", nf, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkFig6op — PT/DS vs |G| on synthetic graphs (Fig. 6(o), 6(p)).
func BenchmarkFig6op(b *testing.B) {
	dict := NewDict()
	q := GenCyclicPatternOver(dict, 5, 10, 4, 300)
	for _, mult := range []int{1, 2, 4} {
		g := GenSynthetic(dict, mult*benchSynNV/2, mult*benchSynNE/2, int64(mult))
		part, err := PartitionTargetRatio(g, 8, ByVf, 0.20, 1)
		if err != nil {
			b.Fatal(err)
		}
		dep := benchDeploy(b, part)
		for _, algo := range exp3Algos {
			b.Run(fmt.Sprintf("G=(%dK,%dK)/%s", g.NumNodes()/1000, g.NumEdges()/1000, algo), func(b *testing.B) {
				benchQuery(b, dep, q, WithAlgorithm(algo))
			})
		}
	}
}

// BenchmarkCentralized — the HHK kernel itself (the |G|-dependent cost
// every partition-bounded algorithm avoids paying centrally).
func BenchmarkCentralized(b *testing.B) {
	dict := NewDict()
	g := GenWeb(dict, benchWebNV, benchWebNE, 1)
	q := GenCyclicPatternOver(dict, 5, 10, 4, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(q, g)
	}
}

// BenchmarkTreeDGPMt — dGPMt's two-round protocol (Corollary 4).
func BenchmarkTreeDGPMt(b *testing.B) {
	dict := NewDict()
	g := GenTree(dict, 50_000, 1)
	q := GenTreePattern(dict, 4, 9)
	part, err := PartitionTree(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	dep := benchDeploy(b, part)
	benchQuery(b, dep, q, WithAlgorithm(AlgoDGPMt))
}

// BenchmarkImpossibilityChain — the Fig-2 gadget: cost grows with |F|
// even though |Q| and |Fm| are constant (Theorem 1's empirical face).
func BenchmarkImpossibilityChain(b *testing.B) {
	dict := NewDict()
	q := ChainQuery(dict)
	for _, n := range []int{16, 64, 256} {
		g := GenChain(dict, n, false)
		part, err := PartitionChain(g, n)
		if err != nil {
			b.Fatal(err)
		}
		dep := benchDeploy(b, part)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchQuery(b, dep, q, WithAlgorithm(AlgoDGPM))
		})
	}
}

// BenchmarkIncrementalVsRecompute — the point of mutable deployments:
// on a 256-site synthetic world absorbing a 1% edge-deletion stream in
// batches, maintaining a Watched query incrementally (falsification
// propagation over the affected area only) versus re-running the query
// from scratch after each batch. Both arms pay the same fragment-update
// distribution; the reported data_KB/op and ms/batch isolate the
// maintenance-vs-recompute delta — incremental must ship fewer bytes
// (DS) and take less time (PT).
func BenchmarkIncrementalVsRecompute(b *testing.B) {
	const (
		nv, ne  = 8_000, 32_000
		sites   = 256
		batches = 8
	)
	type world struct {
		dep     *Deployment
		part    *Partition
		q       *Pattern
		batches [][]EdgeOp
	}
	build := func(b *testing.B, seed int64) *world {
		dict := NewDict()
		g := GenSynthetic(dict, nv, ne, seed)
		part, err := PartitionRandom(g, sites, seed)
		if err != nil {
			b.Fatal(err)
		}
		dep, err := Deploy(part, WithNetwork(EC2Network()))
		if err != nil {
			b.Fatal(err)
		}
		q := GenCyclicPatternOver(dict, 5, 10, 4, seed+1)
		nDel := ne / 100
		stream := GenUpdateStream(part.CurrentGraph(), nDel, 0, seed+2)
		return &world{dep: dep, part: part, q: q, batches: BatchOps(stream, nDel/batches+1)}
	}
	ctx := context.Background()

	b.Run("incremental", func(b *testing.B) {
		var bytes int64
		var wall int64
		n := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := build(b, int64(i))
			m, err := w.dep.Watch(ctx, w.q)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, batch := range w.batches {
				if _, err := w.dep.Apply(ctx, batch); err != nil {
					b.Fatal(err)
				}
				st := m.LastStats()
				bytes += st.DataBytes
				wall += int64(st.Wall)
				n++
			}
			b.StopTimer()
			w.dep.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(bytes)/float64(n)/1024, "data_KB/batch")
		b.ReportMetric(float64(wall)/float64(n)/1e6, "ms/batch")
	})
	b.Run("recompute", func(b *testing.B) {
		var bytes int64
		var wall int64
		n := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := build(b, int64(i))
			b.StartTimer()
			for _, batch := range w.batches {
				if _, err := w.dep.Apply(ctx, batch); err != nil {
					b.Fatal(err)
				}
				res, err := w.dep.Query(ctx, w.q)
				if err != nil {
					b.Fatal(err)
				}
				bytes += res.Stats.DataBytes
				wall += int64(res.Stats.Wall)
				n++
			}
			b.StopTimer()
			w.dep.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(bytes)/float64(n)/1024, "data_KB/batch")
		b.ReportMetric(float64(wall)/float64(n)/1e6, "ms/batch")
	})
}

// BenchmarkDeployAmortization — the point of the persistent Deployment
// API: per-call deploy (the legacy Run path: substrate up, one query,
// substrate down) versus serving queries from resident fragments. Both
// arms run the identical dGPM protocol on a free network, so the delta
// is exactly the per-query deployment overhead that residency
// amortizes. Two regimes: an 8-site synthetic world where protocol work
// dominates, and a 256-site chain world (the Fig-2 gadget's shape)
// where substrate startup is a third of the legacy per-call cost.
func BenchmarkDeployAmortization(b *testing.B) {
	type world struct {
		name string
		q    *Pattern
		part *Partition
	}
	var worlds []world
	{
		dict := NewDict()
		g := GenSynthetic(dict, 5_000, 20_000, 42)
		q := GenCyclicPatternOver(dict, 5, 10, 4, 100)
		part, err := PartitionTargetRatio(g, 8, ByVf, 0.25, 1)
		if err != nil {
			b.Fatal(err)
		}
		worlds = append(worlds, world{"synthetic-F=8", q, part})
	}
	{
		dict := NewDict()
		q := ChainQuery(dict)
		g := GenChain(dict, 256, true)
		part, err := PartitionChain(g, 256)
		if err != nil {
			b.Fatal(err)
		}
		worlds = append(worlds, world{"chain-F=256", q, part})
	}
	for _, w := range worlds {
		b.Run(w.name+"/RunDeployPerQuery", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(AlgoDGPM, w.q, w.part); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/QueryResidentDeployment", func(b *testing.B) {
			dep, err := Deploy(w.part)
			if err != nil {
				b.Fatal(err)
			}
			defer dep.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dep.Query(context.Background(), w.q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerArms — the planner's one-shot arms head to head: the
// same cyclic queries on a planner-on and a planner-off deployment of
// one 64-site web fragmentation, free network (by confluence the plan
// cannot change what ships, so the delta is pure site compute — the
// label-bucketed construction and selectivity-ordered seeding the
// planner enables). Companion of benchfig -group planner.
func BenchmarkPlannerArms(b *testing.B) {
	dict := NewDict()
	g := GenWeb(dict, benchWebNV, benchWebNE, 1)
	part, err := PartitionTargetRatio(g, 64, ByVf, 0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := GenCyclicPatternOver(dict, 6, 8, 4, 100)
	for _, arm := range []struct {
		name string
		opts []DeployOption
	}{
		{"planned", nil},
		{"unplanned", []DeployOption{WithPlannerDisabled()}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			dep, err := Deploy(part, arm.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer dep.Close()
			benchQuery(b, dep, q)
		})
	}
}
