package dgs

import (
	"context"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/obs"
)

// Algorithm selects a distributed evaluation strategy.
type Algorithm int

const (
	// AlgoDGPM is the paper's partition-bounded algorithm with both §4.2
	// optimizations (incremental lEval + push, θ=0.2). Theorem 2.
	AlgoDGPM Algorithm = iota
	// AlgoDGPMNoOpt is dGPM without incremental evaluation or push — the
	// dGPMNOpt baseline of §6.
	AlgoDGPMNoOpt
	// AlgoDGPMd is the rank-scheduled algorithm for DAG patterns or DAG
	// data graphs. Theorem 3.
	AlgoDGPMd
	// AlgoDGPMt is the two-round algorithm for tree data graphs with
	// connected fragments. Corollary 4.
	AlgoDGPMt
	// AlgoMatch ships every fragment to one site and evaluates centrally
	// (the naive algorithm of §3.1).
	AlgoMatch
	// AlgoDisHHK is the candidate-subgraph-shipping algorithm of Ma et
	// al. WWW'12 [25].
	AlgoDisHHK
	// AlgoDMes is the vertex-centric Pregel-style algorithm [14,26].
	AlgoDMes
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgoDGPM:
		return "dGPM"
	case AlgoDGPMNoOpt:
		return "dGPMNOpt"
	case AlgoDGPMd:
		return "dGPMd"
	case AlgoDGPMt:
		return "dGPMt"
	case AlgoMatch:
		return "Match"
	case AlgoDisHHK:
		return "disHHK"
	case AlgoDMes:
		return "dMes"
	default:
		return "unknown"
	}
}

// Stats reports one query's cost metrics: PT (wall-clock response time)
// and DS (exact encoded bytes of protocol data shipped between sites),
// the two axes of every figure in §6, plus supporting detail. Concurrent
// queries on one Deployment each get their own isolated Stats.
type Stats struct {
	// Wall is the response time (PT): from posting Q to assembled Q(G).
	Wall time.Duration
	// DataBytes is the data shipment (DS): falsifications, rank batches,
	// pushed equations, shipped subgraphs, candidate vectors.
	DataBytes int64
	// DataMsgs counts data messages.
	DataMsgs int64
	// ControlBytes counts coordination traffic (query posting, votes,
	// changed flags), reported separately as in the paper.
	ControlBytes int64
	// ResultBytes counts the final match collection (the answer itself).
	ResultBytes int64
	// Rounds counts algorithm-defined communication rounds (supersteps
	// for dMes, evaluation rounds for dGPM, waves for dGPMd).
	Rounds int64
	// MaxSiteBusy is the busiest site's cumulative compute time.
	MaxSiteBusy time.Duration
	// WireBytes is the measured transport traffic of the query: real
	// socket bytes (frame headers included) on a WithRemoteSites
	// deployment, 0 in-process. DataBytes above counts exact payload
	// encodings on both transports.
	WireBytes int64
}

func fromCluster(s cluster.Stats) Stats {
	return Stats{
		Wall:         s.Wall,
		DataBytes:    s.DataBytes,
		DataMsgs:     s.DataMsgs,
		ControlBytes: s.ControlBytes,
		ResultBytes:  s.ResultBytes,
		Rounds:       s.Rounds,
		MaxSiteBusy:  s.MaxSiteBusy,
		WireBytes:    s.WireBytes,
	}
}

// QueryTrace is one traced query's span tree: per-site, per-round
// busy time and message/byte counts, assembled after the session
// closed (WithTrace). Totals sums the spans; Flame renders a
// human-readable per-site flame summary.
type QueryTrace = obs.QueryTrace

// SiteTrace is one site's recorded spans within a QueryTrace; site
// obs.CoordinatorSite (-1) is the driver-side coordinator.
type SiteTrace = obs.SiteTrace

// RoundSpan is one (site, round) span of a QueryTrace.
type RoundSpan = obs.RoundSpan

// Result is the outcome of a distributed evaluation.
type Result struct {
	Match *Match
	Stats Stats
	// Version is the deployment's graph version the query evaluated
	// against (see Deployment.Version). Apply serializes with queries, so
	// the whole evaluation observed exactly this version.
	Version uint64
	// Trace is the query's span tree when it ran with WithTrace, nil
	// otherwise (and nil for planner short-circuits, which open no
	// session). On a TCP deployment with pre-trace daemons the trace
	// comes back with Complete=false: the driver-side spans are present,
	// the unreachable sites' missing.
	Trace *QueryTrace
}

// Options is the legacy positional configuration of Run. New code should
// use Deploy/Query with functional options instead.
type Options struct {
	// PushTheta overrides the push benefit threshold θ (default 0.2).
	// The zero value means "unset" — this struct cannot express an
	// explicit θ=0; use WithPushTheta(0) on Deployment.Query for that.
	// Only meaningful for AlgoDGPM.
	PushTheta float64
	// DisablePush turns the push operation off while keeping incremental
	// evaluation (an ablation point between dGPM and dGPMNOpt).
	DisablePush bool
	// GraphIsDAG asserts the data graph is acyclic, allowing AlgoDGPMd
	// to answer cyclic patterns with ∅ immediately (§5.1 "DAG G").
	GraphIsDAG bool
}

// queryOptions translates the legacy struct into functional options,
// preserving its documented sentinel: PushTheta==0 means unset.
func (o Options) queryOptions(algo Algorithm) []QueryOption {
	qopts := []QueryOption{WithAlgorithm(algo)}
	if o.PushTheta != 0 {
		qopts = append(qopts, WithPushTheta(o.PushTheta))
	}
	if o.DisablePush {
		qopts = append(qopts, WithPushDisabled())
	}
	if o.GraphIsDAG {
		qopts = append(qopts, WithGraphIsDAG())
	}
	return qopts
}

// Run evaluates the data-selecting pattern query q over the fragmentation
// with the chosen algorithm. It is a compatibility wrapper that deploys a
// throwaway substrate (free network), answers the one query, and tears
// the substrate down; a query stream should Deploy once and use
// Deployment.Query.
func Run(algo Algorithm, q *Pattern, part *Partition, opts ...Options) (*Result, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if q == nil {
		return nil, errorf("run: nil pattern")
	}
	if part == nil {
		return nil, errorf("run: nil partition")
	}
	dep, err := Deploy(part)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	return dep.Query(context.Background(), q, o.queryOptions(algo)...)
}

// RunBoolean evaluates q as a Boolean pattern query: true iff G matches Q.
func RunBoolean(algo Algorithm, q *Pattern, part *Partition, opts ...Options) (bool, Stats, error) {
	res, err := Run(algo, q, part, opts...)
	if err != nil {
		return false, Stats{}, err
	}
	return res.Match.Ok(), res.Stats, nil
}
