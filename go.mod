module dgs

go 1.22
