package dgs

// TestFailoverSmokeExternal is the driver half of
// scripts/failover_smoke.sh. The script starts three serving dgsd
// processes plus one spare, launches this test pointed at them via
// environment variables, and then SIGKILLs one serving daemon a few
// seconds in. The test streams update batches throughout — deleting a
// wave of edges, then re-inserting them — and requires every answer
// (live query and standing query alike) to match the centralized
// Simulate oracle. It exits successfully only once the deployment has
// recorded at least one failover AND a fully verified round completed
// after it, all inside one driver process: the smoke proves recovery
// without a restart.
//
// Without the environment variables the test skips, so `go test ./...`
// never depends on external daemons.

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

func TestFailoverSmokeExternal(t *testing.T) {
	addrsEnv := os.Getenv("DGS_FAILOVER_SMOKE_ADDRS")
	spare := os.Getenv("DGS_FAILOVER_SMOKE_SPARE")
	if addrsEnv == "" || spare == "" {
		t.Skip("external failover smoke: run via scripts/failover_smoke.sh")
	}
	addrs := strings.Split(addrsEnv, ",")

	dict := NewDict()
	g := GenSynthetic(dict, 400, 1200, 41)
	q := GenCyclicPatternOver(dict, 4, 6, 4, 42)
	part, err := PartitionBlocks(g, 2*len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part,
		WithRemoteSites(addrs...),
		WithSpareSites(spare),
		WithHeartbeat(100*time.Millisecond, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()

	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Current().Equal(Simulate(q, g)) {
		t.Fatal("initial standing query diverges from Simulate")
	}

	// Pre-draw waves of edges to delete and re-insert, so the stream
	// never runs dry no matter how long detection + recovery take.
	var waves [][]EdgeOp
	for v, wave := 0, []EdgeOp{}; v < g.NumNodes(); v++ {
		if succ := g.Succ(NodeID(v)); len(succ) > 0 {
			wave = append(wave, DeleteOp(NodeID(v), succ[0]))
		}
		if len(wave) == 10 {
			waves = append(waves, wave)
			wave = []EdgeOp{}
		}
	}

	// applyRetry streams one batch, riding out the failover window:
	// ErrSiteLost is the retryable sentinel (auto-recovery is running
	// underneath — spare + heartbeat are configured); anything else is
	// fatal. An interrupted batch left no driver-side effects, so the
	// retry re-submits it verbatim.
	applyRetry := func(ops []EdgeOp) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			_, err := dep.Apply(ctx, ops)
			if err == nil {
				return
			}
			if !errors.Is(err, ErrSiteLost) {
				t.Fatalf("apply during smoke: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("apply did not recover in time: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	queryRetry := func() *Result {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			res, err := dep.Query(ctx, q)
			if err == nil {
				return res
			}
			if !errors.Is(err, ErrSiteLost) {
				t.Fatalf("query during smoke: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("query did not recover in time: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Stream delete / re-insert rounds until a failover has been
	// recorded and a clean round verified after it. The script's kill
	// lands a few seconds in, mid-stream.
	deadline := time.Now().Add(120 * time.Second)
	for round := 0; ; round++ {
		if time.Now().After(deadline) {
			t.Fatalf("no failover observed after %d rounds — was a daemon killed?", round)
		}
		// Rounds pair up: round 2k deletes wave k, round 2k+1 restores
		// it, so the stream cycles indefinitely without ever inserting
		// an edge that is already present.
		wave := waves[(round/2)%len(waves)]
		del := round%2 == 0
		ops := make([]EdgeOp, len(wave))
		for i, op := range wave {
			if del {
				ops[i] = op
			} else {
				ops[i] = InsertOp(op.V, op.W)
			}
		}
		applyRetry(ops)
		oracle := Simulate(q, dep.Partition().CurrentGraph())
		if res := queryRetry(); !res.Match.Equal(oracle) {
			t.Fatalf("round %d: live query diverges from oracle", round)
		}
		if dep.Failovers() >= 1 {
			// Recovery happened and the round above verified after it;
			// give the re-registered standing query a moment to land,
			// then require it to agree too.
			wd := time.Now().Add(15 * time.Second)
			for !w.Current().Equal(oracle) {
				if time.Now().After(wd) {
					t.Fatal("standing query did not re-register after failover")
				}
				time.Sleep(50 * time.Millisecond)
			}
			t.Logf("failover smoke: %d failover(s), verified at round %d", dep.Failovers(), round)
			return
		}
	}
}
