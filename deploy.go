package dgs

// The persistent deployment API — the paper's actual setting: a graph G
// is fragmented ONCE across n sites (§2.2), and then a stream of pattern
// queries is evaluated against the resident fragments. Deploy starts the
// site substrate and returns a long-lived handle; Query evaluates one
// pattern with per-query algorithm selection, context cancellation and
// isolated Stats; Close tears the substrate down. See DESIGN.md for the
// lifecycle and concurrency contract.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/baseline"
	"dgs/internal/cluster"
	"dgs/internal/dagsim"
	"dgs/internal/dgpm"
	"dgs/internal/obs"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/simulation"
	"dgs/internal/transport/tcpnet"
	"dgs/internal/treesim"
)

// Transport is the pluggable wire backend a Deployment runs on: the
// in-process channel network by default, loopback/remote TCP via
// WithRemoteSites, or any custom implementation via WithTransport.
type Transport = cluster.Transport

// ErrClosed marks an operation against a closed deployment — returned
// (wrapped; test with errors.Is) by Query, Apply and Watch after Close,
// and by queries a concurrent Close aborted. It is the server-side
// "shutting down" condition, distinct from caller mistakes.
var ErrClosed = errors.New("deployment is closed")

// Network models per-deployment link cost: pipelined propagation latency,
// serialized per-site receive bandwidth, and per-message receive
// overhead. The zero Network delivers instantly — the right setting for
// tests. There is no process-global network state; the model is fixed
// per deployment at Deploy time.
type Network struct {
	// Latency is the per-message propagation delay (pipelined).
	Latency time.Duration
	// Bandwidth is bytes/sec each site can receive; 0 = infinite.
	Bandwidth int64
	// PerMsg is the serialized per-message receive overhead.
	PerMsg time.Duration
}

// EC2Network approximates the paper's Amazon EC2 setup (§6): with it,
// response times charge for shipped bytes the way the paper's cluster
// does.
func EC2Network() Network { return Network(cluster.EC2Network()) }

// queryConfig is the resolved per-query configuration.
type queryConfig struct {
	algo        Algorithm
	theta       float64
	thetaSet    bool
	disablePush bool
	graphIsDAG  bool
	trace       bool
}

// dgpmConfig translates the query configuration into the dGPM engine
// config. An explicitly set θ is honored even when it is 0 (always
// push) — the sentinel footgun of the legacy Options struct.
func (qc queryConfig) dgpmConfig() dgpm.Config {
	cfg := dgpm.DefaultConfig()
	if qc.thetaSet {
		cfg.Theta = qc.theta
	}
	if qc.disablePush {
		cfg.Push = false
	}
	return cfg
}

// QueryOption tunes one Query (or, via WithQueryDefaults, every query of
// a deployment).
type QueryOption func(*queryConfig)

// WithAlgorithm selects the evaluation algorithm (default AlgoDGPM).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(qc *queryConfig) { qc.algo = a }
}

// WithPushTheta sets the push benefit threshold θ of §4.2 (default 0.2).
// Unlike the legacy Options.PushTheta, an explicit 0 is honored: θ=0
// makes every beneficial-or-not push fire. Only meaningful for AlgoDGPM.
func WithPushTheta(theta float64) QueryOption {
	return func(qc *queryConfig) { qc.theta = theta; qc.thetaSet = true }
}

// WithPushDisabled turns the push operation off while keeping
// incremental evaluation (the ablation point between dGPM and dGPMNOpt).
func WithPushDisabled() QueryOption {
	return func(qc *queryConfig) { qc.disablePush = true }
}

// WithGraphIsDAG asserts the data graph is acyclic, allowing AlgoDGPMd
// to answer cyclic patterns with ∅ immediately (§5.1 "DAG G") instead of
// running the distributed acyclicity check.
func WithGraphIsDAG() QueryOption {
	return func(qc *queryConfig) { qc.graphIsDAG = true }
}

// WithTrace records a distributed trace for the query: every site (and
// the coordinator) logs per-round spans — busy time, messages and bytes
// in/out — assembled into Result.Trace after the query completes.
// Tracing rides the session spec; on a TCP deployment the spans ship
// back in a TRACE frame after the session closes, costing nothing on
// the query's hot path and leaving an untraced query's wire traffic
// byte-identical to a build without tracing.
func WithTrace() QueryOption {
	return func(qc *queryConfig) { qc.trace = true }
}

// deployConfig collects Deploy-time settings.
type deployConfig struct {
	net         cluster.Network
	transport   cluster.Transport
	remoteAddrs []string
	dialTimeout time.Duration
	protoMax    uint16
	spares      []string
	hbInterval  time.Duration
	hbMisses    int
	plannerOff  bool
	defaults    queryConfig
}

// DeployOption configures a Deployment at Deploy time.
type DeployOption func(*deployConfig)

// WithNetwork installs the deployment's emulated link cost model. The
// default is the free zero Network. Only meaningful for in-process
// deployments — a TCP deployment pays its real network instead.
func WithNetwork(n Network) DeployOption {
	return func(dc *deployConfig) { dc.net = cluster.Network(n) }
}

// WithRemoteSites deploys over TCP: one dgsd daemon per address, each
// hosting a contiguous block of the fragments, shipped at Deploy time.
// The deployment then spans OS processes — queries, live updates and
// standing queries work exactly as in-process, and Stats.WireBytes
// reports the measured socket traffic per query. Deploy fails if any
// daemon is unreachable, speaks a different protocol version, or
// rejects its fragments.
func WithRemoteSites(addrs ...string) DeployOption {
	return func(dc *deployConfig) { dc.remoteAddrs = append([]string(nil), addrs...) }
}

// WithDialTimeout bounds each daemon connect + fragment shipment of a
// WithRemoteSites deployment (default 30s).
func WithDialTimeout(d time.Duration) DeployOption {
	return func(dc *deployConfig) { dc.dialTimeout = d }
}

// WithWireProtocolMax caps the wire protocol version a WithRemoteSites
// deployment offers its daemons; 0 (the default) means the newest this
// build speaks. Pinning 1 forces per-message frames instead of
// coalesced batches — the transport bench uses it to measure the
// uncoalesced baseline, and it interoperates with daemons that predate
// version negotiation.
func WithWireProtocolMax(v uint16) DeployOption {
	return func(dc *deployConfig) { dc.protoMax = v }
}

// WithTransport installs a caller-built Transport (expert use: tests,
// custom backends). The transport must host exactly the partition's
// fragments. Unless it declares cluster.FragmentSharer (sites operate
// on the driver's own fragment objects), it is treated as remote:
// Apply replays update batches on the driver's fragmentation to keep
// its metadata in sync with the sites' copies.
func WithTransport(tr Transport) DeployOption {
	return func(dc *deployConfig) { dc.transport = tr }
}

// WithPlannerDisabled turns query planning off for the deployment:
// queries evaluate in declaration order, absent-label patterns run the
// full protocol instead of short-circuiting, and standing queries each
// hold their own maintenance session instead of sharing one. Results
// are identical either way — the dGPM fixpoint is confluent — so this
// is the ablation/baseline arm, not a semantic switch.
func WithPlannerDisabled() DeployOption {
	return func(dc *deployConfig) { dc.plannerOff = true }
}

// WithQueryDefaults sets deployment-level defaults applied to every
// Query before its own options.
func WithQueryDefaults(opts ...QueryOption) DeployOption {
	return func(dc *deployConfig) {
		for _, o := range opts {
			o(&dc.defaults)
		}
	}
}

// Deployment is a fragmented graph resident on a running distributed
// substrate: one goroutine per site plus a coordinator, created once by
// Deploy and serving any number of Query calls — sequentially or
// concurrently — until Close. Queries multiplex over the same sites
// with isolated per-query statistics.
type Deployment struct {
	part     *Partition
	c        *cluster.Cluster
	defaults queryConfig
	// planner names the registered planner queries are planned with
	// ("" with WithPlannerDisabled). Fixed at Deploy time.
	planner string
	// planStats are the label statistics plans are built from, collected
	// once at Deploy: Apply mutates edges only, so label populations —
	// and with them the Empty short-circuit — stay exact forever, and
	// the degree sums remain an adequate work proxy.
	planStats *plan.Stats
	// remote marks a deployment whose sites hold their own fragment
	// copies (another process); Apply then replays batches locally to
	// keep the driver's fragmentation metadata in sync.
	remote bool
	// autoRecover runs recovery automatically when the transport reports
	// a lost site (set by WithSpareSites / WithHeartbeat).
	autoRecover bool
	// recoverMu serializes Recover calls (manual and automatic).
	recoverMu sync.Mutex
	// failovers counts completed recoveries.
	failovers atomic.Int64
	// metrics is the deployment's metric registry (driver + transport
	// instruments); traceSeq numbers traced queries' trace IDs.
	metrics  *obs.Registry
	om       driverMetrics
	traceSeq atomic.Uint64
	// applyInterrupted records that a distribution batch died mid-flight
	// (some sites mutated, others not); the next recovery then re-ships
	// every fragment instead of only the lost ones. Guarded by state
	// held exclusively.
	applyInterrupted bool

	// state guards the resident graph: queries (and standing-query
	// evaluations) share it, Apply takes it exclusively. In-flight
	// queries therefore see the graph as of their start; queries issued
	// after Apply returns see the updated graph.
	state sync.RWMutex
	// version counts the update batches that changed the graph. It is
	// written only while state is held exclusively (Apply), so a query —
	// which holds the read lock throughout its evaluation — observes one
	// stable version for its whole run. Caches key freshness off it.
	// Accessed atomically so Version() never blocks behind an in-flight
	// Apply (health probes must stay live during large updates).
	version atomic.Uint64

	watchMu  sync.Mutex
	watchers map[*Maintained]struct{}
	// shard is the deployment's shared standing-query shard (planner-on
	// deployments only): every non-empty Watch pattern lives as one block
	// of its single maintenance session. Guarded by shardMu; created
	// lazily by the first Watch.
	shardMu sync.Mutex
	shard   *watchShard

	mu     sync.Mutex
	closed bool
}

// Deploy makes the fragmentation resident and returns the serving
// handle. In-process (the default), it starts one site goroutine per
// fragment plus the coordinator; with WithRemoteSites it ships each
// daemon its fragments over TCP and the sites live there. The caller
// must Close the deployment when done with it.
func Deploy(part *Partition, opts ...DeployOption) (*Deployment, error) {
	if part == nil {
		return nil, errorf("deploy: nil partition")
	}
	var dc deployConfig
	for _, o := range opts {
		o(&dc)
	}
	if dc.transport != nil && len(dc.remoteAddrs) > 0 {
		return nil, errorf("deploy: WithTransport and WithRemoteSites are mutually exclusive")
	}
	d := &Deployment{
		part:      part,
		defaults:  dc.defaults,
		watchers:  make(map[*Maintained]struct{}),
		planStats: plan.Collect(part.fr.G),
		metrics:   obs.NewRegistry(),
	}
	d.registerMetrics()
	if !dc.plannerOff {
		d.planner = plan.Greedy
	}
	switch {
	case dc.transport != nil:
		if dc.transport.NumSites() != part.NumFragments() {
			return nil, errorf("deploy: transport hosts %d sites for %d fragments",
				dc.transport.NumSites(), part.NumFragments())
		}
		sharer, ok := dc.transport.(cluster.FragmentSharer)
		d.remote = !(ok && sharer.SharesDriverFragments())
		d.c = cluster.NewWithTransport(dc.transport)
	case len(dc.remoteAddrs) > 0:
		ctx := context.Background()
		tr, err := tcpnet.Dial(ctx, dc.remoteAddrs, part.fr, tcpnet.Options{
			DialTimeout:       dc.dialTimeout,
			MaxProtocol:       dc.protoMax,
			Spares:            dc.spares,
			HeartbeatInterval: dc.hbInterval,
			HeartbeatMisses:   dc.hbMisses,
			Metrics:           d.metrics,
		})
		if err != nil {
			return nil, errorf("deploy: %w", err)
		}
		d.remote = true
		d.c = cluster.NewWithTransport(tr)
	default:
		d.c = cluster.NewLocal(part.fr, dc.net)
	}
	d.bindFailover(len(dc.spares) > 0 || dc.hbInterval > 0)
	return d, nil
}

// driverMetrics are the deployment's driver-side instruments, written
// by Query and Apply.
type driverMetrics struct {
	queries      *obs.Counter
	queryErrors  *obs.Counter
	querySeconds *obs.Histogram
	queryRounds  *obs.Histogram
	dataBytes    *obs.Counter
	controlBytes *obs.Counter
	resultBytes  *obs.Counter
	wireBytes    *obs.Counter
	rounds       *obs.Counter
	applies      *obs.Counter
}

// registerMetrics installs the driver-side instruments on the
// deployment's registry. Aggregates that already live on the Deployment
// (graph version, failovers) export as funcs; per-query observations
// get dedicated instruments Query drives.
func (d *Deployment) registerMetrics() {
	r := d.metrics
	d.om.queries = r.Counter("dgs_queries_total", "Queries evaluated (successes).")
	d.om.queryErrors = r.Counter("dgs_query_errors_total", "Queries that returned an error.")
	d.om.querySeconds = r.Histogram("dgs_query_seconds",
		"Query response time (the paper's PT), in seconds.", obs.DefTimeBuckets)
	d.om.queryRounds = r.Histogram("dgs_query_rounds",
		"Communication rounds per query.", obs.DefCountBuckets)
	d.om.dataBytes = r.Counter("dgs_data_bytes_total",
		"Data shipment bytes across all queries (the paper's DS).")
	d.om.controlBytes = r.Counter("dgs_control_bytes_total",
		"Coordination traffic bytes across all queries.")
	d.om.resultBytes = r.Counter("dgs_result_bytes_total",
		"Match collection bytes across all queries.")
	d.om.wireBytes = r.Counter("dgs_wire_bytes_total",
		"Measured transport bytes across all queries (0 in-process).")
	d.om.rounds = r.Counter("dgs_rounds_total",
		"Communication rounds summed across all queries.")
	d.om.applies = r.Counter("dgs_applies_total",
		"Update batches applied to the resident graph.")
	r.CounterFunc("dgs_failovers_total",
		"Completed site-loss recoveries.",
		func() float64 { return float64(d.failovers.Load()) })
	r.GaugeFunc("dgs_graph_version",
		"Resident graph version (update batches that changed the graph).",
		func() float64 { return float64(d.version.Load()) })
}

// Metrics returns the deployment's metric registry: driver-side query
// instruments plus, on a TCP deployment, the transport's. Serve it with
// obs.Handler — the gateway merges it into its /metrics endpoint.
func (d *Deployment) Metrics() *obs.Registry { return d.metrics }

// Remote reports whether the deployment's sites live in other OS
// processes (fragments were shipped at Deploy time).
func (d *Deployment) Remote() bool { return d.remote }

// NumSites reports the number of worker sites (= fragments).
func (d *Deployment) NumSites() int { return d.c.NumSites() }

// WireFrames reports the post-deployment frames the driver has written
// to and read from its daemon sockets so far, when the transport
// measures them (the TCP backend does); in-process deployments report
// zeros. Coalescing makes this grow far slower than the message count
// — the transport bench records the deltas per query.
func (d *Deployment) WireFrames() (sent, received int64) {
	if fc, ok := d.c.Transport().(interface{ Frames() (int64, int64) }); ok {
		return fc.Frames()
	}
	return 0, 0
}

// Partition returns the resident fragmentation.
func (d *Deployment) Partition() *Partition { return d.part }

// Planner reports the registered name of the deployment's query
// planner, or "" when planning is disabled (WithPlannerDisabled).
func (d *Deployment) Planner() string { return d.planner }

// planFor builds the deployment's evaluation plan for p, or nil when
// planning is disabled (or the configured planner is unregistered —
// impossible for the built-in default, and advisory anyway).
func (d *Deployment) planFor(p *pattern.Pattern) *plan.Plan {
	if d.planner == "" {
		return nil
	}
	f, ok := plan.PlannerByName(d.planner)
	if !ok {
		return nil
	}
	return f(p, d.planStats)
}

// Version reports the graph version: a monotone counter starting at 0
// that Apply bumps once per batch that changes the graph (a batch whose
// ops all cancel out does not bump it). Every Result is tagged with the
// version its query evaluated against, so a result cache can tell
// whether a stored answer still reflects the resident graph. Version
// never blocks: during an in-flight Apply it reports the pre-batch
// version until the batch commits.
func (d *Deployment) Version() uint64 { return d.version.Load() }

// Query evaluates the data-selecting pattern query q against the
// resident fragments. Concurrent calls are safe: each query runs as its
// own session on the shared sites, with isolated Stats. Cancelling ctx
// abandons the query promptly — its remaining messages are discarded
// without being delivered — and returns the context's error.
func (d *Deployment) Query(ctx context.Context, q *Pattern, opts ...QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, errorf("query: nil pattern")
	}
	// Fail fast on an already-cancelled context rather than posting the
	// query to the sites first.
	if err := ctx.Err(); err != nil {
		return nil, errorf("query: %w", err)
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, errorf("query: %w", ErrClosed)
	}
	cfg := d.defaults
	for _, o := range opts {
		o(&cfg)
	}
	// Share the resident graph state with other queries; Apply batches
	// wait for in-flight queries and vice versa.
	d.state.RLock()
	defer d.state.RUnlock()

	// Plan the query. A plan whose Empty verdict fired means some query
	// node's label has zero occurrences in the deployed graph, so
	// Q(G) = ∅ for every algorithm (initial candidates are exactly the
	// label-consistent nodes): answer here, with no session opened and
	// no wire traffic at all.
	pl := d.planFor(q.p)
	if pl != nil && pl.Empty {
		d.om.queries.Inc()
		m := simulation.NewMatch(q.p.NumNodes()).Canonical()
		return &Result{Match: &Match{m: m}, Version: d.version.Load()}, nil
	}

	// Trace IDs start at 1: zero is the wire encoding for "untraced".
	var traceID uint64
	if cfg.trace {
		traceID = d.traceSeq.Add(1)
	}
	var m *simulation.Match
	var st cluster.Stats
	var qt *obs.QueryTrace
	var err error
	switch cfg.algo {
	case AlgoDGPM:
		m, st, qt, err = dgpm.EvalPlannedTraced(ctx, d.c, q.p, d.part.fr, cfg.dgpmConfig(), pl, traceID)
	case AlgoDGPMNoOpt:
		m, st, qt, err = dgpm.EvalPlannedTraced(ctx, d.c, q.p, d.part.fr, dgpm.NOptConfig(), pl, traceID)
	case AlgoDGPMd:
		m, st, qt, err = dagsim.EvalTraced(ctx, d.c, q.p, d.part.fr, cfg.graphIsDAG, traceID)
	case AlgoDGPMt:
		m, st, qt, err = treesim.EvalTraced(ctx, d.c, q.p, d.part.fr, traceID)
	case AlgoMatch:
		m, st, qt, err = baseline.EvalMatchTraced(ctx, d.c, q.p, d.part.fr, traceID)
	case AlgoDisHHK:
		m, st, qt, err = baseline.EvalDisHHKTraced(ctx, d.c, q.p, d.part.fr, traceID)
	case AlgoDMes:
		m, st, qt, err = baseline.EvalDMesTraced(ctx, d.c, q.p, d.part.fr, traceID)
	default:
		return nil, errorf("unknown algorithm %d", cfg.algo)
	}
	if err != nil {
		d.om.queryErrors.Inc()
		if errors.Is(err, cluster.ErrSiteLost) {
			// Retryable: the deployment recovers (or Recover does) and
			// the same query then succeeds — dgsgw turns this into 503
			// + Retry-After rather than a hard failure.
			return nil, errorf("query %s: %w", cfg.algo, publicErr(err))
		}
		if errors.Is(err, cluster.ErrClosed) {
			return nil, errorf("query %s: %w while evaluating", cfg.algo, ErrClosed)
		}
		return nil, errorf("query %s: %w", cfg.algo, err)
	}
	d.observeQuery(st)
	// d.version cannot change while the read lock is held, so the tag is
	// exactly the graph state the evaluation observed.
	return &Result{Match: &Match{m: m}, Stats: fromCluster(st), Version: d.version.Load(), Trace: qt}, nil
}

// observeQuery folds one successful query's stats into the metrics.
func (d *Deployment) observeQuery(st cluster.Stats) {
	d.om.queries.Inc()
	d.om.querySeconds.Observe(st.Wall.Seconds())
	d.om.queryRounds.Observe(float64(st.Rounds))
	d.om.dataBytes.Add(st.DataBytes)
	d.om.controlBytes.Add(st.ControlBytes)
	d.om.resultBytes.Add(st.ResultBytes)
	d.om.wireBytes.Add(st.WireBytes)
	d.om.rounds.Add(st.Rounds)
}

// QueryBoolean evaluates q as a Boolean pattern query: true iff G
// matches Q.
func (d *Deployment) QueryBoolean(ctx context.Context, q *Pattern, opts ...QueryOption) (bool, Stats, error) {
	res, err := d.Query(ctx, q, opts...)
	if err != nil {
		return false, Stats{}, err
	}
	return res.Match.Ok(), res.Stats, nil
}

// Close shuts the substrate down: in-flight queries are aborted (their
// Query calls return an error), standing-query sessions are dropped
// (their Maintained handles keep serving the last relation), and the
// site goroutines exit. Idempotent; queries after Close fail.
func (d *Deployment) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.c.Shutdown()
	return nil
}
