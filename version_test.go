package dgs

// The graph-version counter contract the serving cache rests on:
// Version starts at 0, bumps exactly once per batch that changes the
// graph, stays put for no-op batches, and every Result is tagged with
// the version its evaluation observed.

import (
	"context"
	"testing"
)

func TestGraphVersionCounter(t *testing.T) {
	ctx := context.Background()
	c := drawCase(t, 42)
	dep, err := Deploy(c.part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if v := dep.Version(); v != 0 {
		t.Fatalf("fresh deployment at version %d, want 0", v)
	}
	res, err := dep.Query(ctx, c.q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 0 {
		t.Fatalf("pre-update query tagged %d, want 0", res.Version)
	}

	// An empty batch and a self-cancelling batch must not bump.
	if _, err := dep.Apply(ctx, nil); err != nil {
		t.Fatal(err)
	}
	e := firstEdge(t, c.part.CurrentGraph())
	cancel := []EdgeOp{DeleteOp(e[0], e[1]), InsertOp(e[0], e[1])}
	if _, err := dep.Apply(ctx, cancel); err != nil {
		t.Fatal(err)
	}
	if v := dep.Version(); v != 0 {
		t.Fatalf("no-op batches bumped version to %d", v)
	}

	// Each effective batch bumps by exactly one, and queries issued after
	// Apply returns carry the new tag.
	want := uint64(0)
	for _, batch := range c.batches {
		st, err := dep.Apply(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		if st.Deletions+st.Insertions > 0 {
			want++
		}
		if v := dep.Version(); v != want {
			t.Fatalf("after batch: version %d, want %d", v, want)
		}
		res, err := dep.Query(ctx, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != want {
			t.Fatalf("query tagged %d, want %d", res.Version, want)
		}
	}
}

// firstEdge returns one existing edge of g.
func firstEdge(t *testing.T, g *Graph) [2]NodeID {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if ss := g.Succ(NodeID(v)); len(ss) > 0 {
			return [2]NodeID{NodeID(v), ss[0]}
		}
	}
	t.Fatal("graph has no edges")
	return [2]NodeID{}
}
