package dgs

// Explain: the planner's inspection surface. It reports how a
// deployment would evaluate a pattern — seed and edge orders with their
// selectivity estimates, the Empty short-circuit verdict, and the
// renaming-invariant canonical cache key — without opening a session or
// shipping a byte. dgsrun -explain and the gateway's "explain" request
// field render this.

import (
	"fmt"
	"strings"

	"dgs/internal/pattern"
	"dgs/internal/plan"
)

// PlanInfo describes the evaluation plan of one pattern against a
// deployment, as produced by Deployment.Explain.
type PlanInfo struct {
	// Planner is the registered planner name, or "" when the deployment
	// plans nothing (WithPlannerDisabled); the orders below are then the
	// pattern's declaration orders.
	Planner string
	// CanonicalKey is the renaming-invariant canonical rendering of the
	// pattern: equivalent-modulo-renaming patterns share it, so caches
	// and standing-query sharing key on it.
	CanonicalKey string
	// Empty reports that some query node's label has zero occurrences in
	// the deployed graph: Query answers ∅ without any distributed work.
	Empty bool
	// Nodes is the seed evaluation order, rarest label first.
	Nodes []PlanNode
	// Edges is the query-edge evaluation order, ascending estimated
	// selectivity.
	Edges []PlanEdge
}

// PlanNode is one query node in plan order.
type PlanNode struct {
	// Name is the node's printable identifier, Label its label name.
	Name, Label string
	// Est is the candidate estimate: the number of graph nodes carrying
	// the label (exact for the deployed graph — labels never change).
	Est uint32
}

// PlanEdge is one query edge in plan order.
type PlanEdge struct {
	// From and To are the endpoint node names.
	From, To string
	// Est is the selectivity estimate: the smaller endpoint candidate
	// count (the counter population that can exhaust first).
	Est uint32
}

// Explain reports how the deployment would evaluate q, without
// executing anything. With planning disabled it still reports the
// canonical key and per-node estimates, over declaration order.
func (d *Deployment) Explain(q *Pattern) (*PlanInfo, error) {
	if q == nil {
		return nil, errorf("explain: nil pattern")
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, errorf("explain: %w", ErrClosed)
	}

	p := q.p
	nq := p.NumNodes()
	info := &PlanInfo{
		Planner:      d.planner,
		CanonicalKey: plan.Canonicalize(p).Key,
	}

	// Node and edge orders: the plan's when planning is on, declaration
	// order otherwise. Estimates come from the deployment stats either
	// way — they cost nothing and Explain exists to surface them.
	est := make([]uint32, nq)
	for u := 0; u < nq; u++ {
		est[u] = d.planStats.Candidates(p.Label(pattern.QNode(u)))
		if est[u] == 0 {
			info.Empty = true
		}
	}
	nodeOrder := make([]uint16, nq)
	for u := range nodeOrder {
		nodeOrder[u] = uint16(u)
	}
	// Edge enumeration in the engines' convention: u ascending,
	// succ-slice order.
	type edge struct{ from, to pattern.QNode }
	var edges []edge
	for u := 0; u < nq; u++ {
		for _, w := range p.Succ(pattern.QNode(u)) {
			edges = append(edges, edge{pattern.QNode(u), w})
		}
	}
	edgeOrder := make([]uint16, len(edges))
	for i := range edgeOrder {
		edgeOrder[i] = uint16(i)
	}
	if pl := d.planFor(p); pl != nil {
		nodeOrder, edgeOrder = pl.Nodes, pl.Edges
	}

	for _, u := range nodeOrder {
		info.Nodes = append(info.Nodes, PlanNode{
			Name:  p.NodeName(pattern.QNode(u)),
			Label: p.LabelName(pattern.QNode(u)),
			Est:   est[u],
		})
	}
	for _, ei := range edgeOrder {
		e := edges[ei]
		sel := est[e.from]
		if est[e.to] < sel {
			sel = est[e.to]
		}
		info.Edges = append(info.Edges, PlanEdge{
			From: p.NodeName(e.from),
			To:   p.NodeName(e.to),
			Est:  sel,
		})
	}
	return info, nil
}

// String renders the plan for terminals (dgsrun -explain).
func (pi *PlanInfo) String() string {
	var b strings.Builder
	planner := pi.Planner
	if planner == "" {
		planner = "(disabled; declaration order)"
	}
	fmt.Fprintf(&b, "planner: %s\n", planner)
	if pi.Empty {
		b.WriteString("verdict: empty — a query label has no occurrence in the graph; Query short-circuits\n")
	}
	b.WriteString("seed order (rarest label first):\n")
	for _, n := range pi.Nodes {
		fmt.Fprintf(&b, "  %s (%s) est %d\n", n.Name, n.Label, n.Est)
	}
	b.WriteString("edge order (ascending selectivity):\n")
	for _, e := range pi.Edges {
		fmt.Fprintf(&b, "  %s -> %s est %d\n", e.From, e.To, e.Est)
	}
	b.WriteString("canonical key:\n")
	for _, line := range strings.Split(strings.TrimRight(pi.CanonicalKey, "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}
