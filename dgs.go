// Package dgs is a distributed graph simulation library — a faithful,
// stdlib-only Go implementation of
//
//	Fan, Wang, Wu, Deng. "Distributed Graph Simulation: Impossibility
//	and Possibility." PVLDB 7(12), 2014.
//
// Given a pattern query Q and a node-labeled directed graph G that is
// fragmented over n sites, the library computes the unique maximum graph
// simulation Q(G) with the paper's partition-bounded algorithm dGPM
// (response time independent of |G|, data shipment O(|Ef||Vq|)), the
// rank-scheduled dGPMd for DAG patterns/graphs, the two-round dGPMt for
// tree data graphs, and the evaluation baselines Match, disHHK and dMes.
//
// The distributed substrate runs on a pluggable wire transport. The
// default backend keeps all sites in-process — one goroutine per site,
// real binary message encoding, exact byte accounting, an optional
// emulated link cost model — while WithRemoteSites deploys the same
// fragments across dgsd site-server processes over TCP, where every
// message crosses a real socket and Stats.WireBytes reports the
// measured traffic (docs/WIRE.md specifies the protocol). Matching the
// paper's setting, a graph is fragmented once and then serves a stream
// of queries: Deploy makes the fragments resident on a running
// substrate, Deployment.Query evaluates patterns against it — many at a
// time, with per-query algorithm selection, context cancellation and
// isolated statistics — and Close tears it down.
//
// Deployments are mutable: Deployment.Apply routes a batch of edge
// deletions/insertions to the owning sites, which update their resident
// fragments in place (queries always see the current graph), and
// Deployment.Watch registers a standing query whose match relation is
// maintained incrementally under deletions — O(|AFF|) falsification
// propagation after [13] — with re-evaluation as the insertion
// fallback. See DESIGN.md for the deployment and update lifecycles, the
// session-multiplexing runtime, and the evaluation methodology
// (cmd/benchfig regenerates the paper's figures).
//
// Quick start:
//
//	dict := dgs.NewDict()
//	g := dgs.GenWeb(dict, 300_000, 1_500_000, 1)      // Yahoo-like graph
//	part, _ := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, 0.25, 1)
//	dep, _ := dgs.Deploy(part)                        // fragment once
//	defer dep.Close()
//	q, _ := dgs.ParsePattern(dict, "node a l0\nnode b l1\nedge a b")
//	res, _ := dep.Query(ctx, q)                       // serve many
//	fmt.Println(res.Match.Ok(), res.Stats.DataBytes)
package dgs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/simulation"
)

// NodeID identifies a data-graph node.
type NodeID = graph.NodeID

// QNode identifies a pattern-query node.
type QNode = pattern.QNode

// Dict interns node labels; share one Dict between a graph and the
// patterns queried against it.
type Dict = graph.Dict

// NewDict returns an empty label dictionary.
func NewDict() *Dict { return graph.NewDict() }

// Graph is an immutable node-labeled directed data graph.
type Graph struct {
	g *graph.Graph
}

// NumNodes reports |V|; NumEdges reports |E|; Size reports |V|+|E|.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Size reports |G| = |V| + |E|, the paper's size measure.
func (g *Graph) Size() int { return g.g.Size() }

// LabelName returns the label of node v.
func (g *Graph) LabelName(v NodeID) string { return g.g.LabelName(v) }

// Succ returns the out-neighbors of v; callers must not modify it.
func (g *Graph) Succ(v NodeID) []NodeID { return g.g.Succ(v) }

// IsDAG reports whether the graph is acyclic (dGPMd's data-graph case).
func (g *Graph) IsDAG() bool { return graph.IsDAG(g.g) }

// IsTree reports whether the graph is a rooted tree or forest (dGPMt's
// precondition).
func (g *Graph) IsTree() bool {
	_, ok := graph.IsTree(g.g)
	return ok
}

// WriteBinary serializes the graph (DGSG1 format).
func (g *Graph) WriteBinary(w io.Writer) error { return graph.WriteBinary(w, g.g) }

// ReadGraph deserializes a DGSG1 graph.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// String summarizes the graph.
func (g *Graph) String() string { return g.g.String() }

// GraphBuilder accumulates nodes and edges for a Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns a builder interning labels into dict.
func NewGraphBuilder(dict *Dict) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilderDict(dict)}
}

// AddNode appends a node with the given label and returns its ID.
func (b *GraphBuilder) AddNode(label string) NodeID { return b.b.AddNode(label) }

// AddEdge records the directed edge (v, w).
func (b *GraphBuilder) AddEdge(v, w NodeID) { b.b.AddEdge(v, w) }

// Build validates and returns the immutable graph.
func (b *GraphBuilder) Build() (*Graph, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Pattern is a graph pattern query Q = (Vq, Eq, fv).
type Pattern struct {
	p *pattern.Pattern
}

// ParsePattern reads the pattern DSL:
//
//	node <name> <label>
//	edge <from> <to>
func ParsePattern(dict *Dict, src string) (*Pattern, error) {
	p, err := pattern.Parse(dict, src)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// NumNodes reports |Vq|.
func (p *Pattern) NumNodes() int { return p.p.NumNodes() }

// NumEdges reports |Eq|.
func (p *Pattern) NumEdges() int { return p.p.NumEdges() }

// Size reports |Q| = |Vq| + |Eq|.
func (p *Pattern) Size() int { return p.p.Size() }

// IsDAG reports whether Q is acyclic.
func (p *Pattern) IsDAG() bool { return p.p.IsDAG() }

// Diameter reports d, the undirected diameter of Q (§5.1).
func (p *Pattern) Diameter() int { return p.p.Diameter() }

// NodeName returns a printable identifier for query node u.
func (p *Pattern) NodeName(u QNode) string { return p.p.NodeName(u) }

// String renders the pattern in the ParsePattern format.
func (p *Pattern) String() string { return p.p.String() }

// CanonicalKey returns the pattern's canonical rendering: a key
// invariant under node renaming and declaration reordering, so
// equivalent patterns share one cache entry, one coalesced flight, and
// one standing-query block. Patterns past the canonicalization caps
// (see internal/plan) fall back to a "raw\n"-prefixed declaration-order
// key, which is merely less shareable, never wrong.
func (p *Pattern) CanonicalKey() string { return plan.Canonicalize(p.p).Key }

// Canonical returns the pattern's canonical form: an equivalent pattern
// whose nodes are named c0..cN in canonical order, the CanonicalKey,
// and the node mapping — perm[u] is the canonical pattern's node
// matching this pattern's node u. Fallback patterns return themselves
// with the identity mapping.
func (p *Pattern) Canonical() (canon *Pattern, key string, perm []int) {
	c := plan.Canonicalize(p.p)
	if !strings.HasPrefix(c.Key, "raw\n") {
		if cp, err := pattern.Parse(p.p.Dict(), c.Key); err == nil {
			return &Pattern{p: cp}, c.Key, c.Perm
		}
		// Unreachable for keys Canonicalize produced; degrade to raw.
	}
	ident := make([]int, p.p.NumNodes())
	for i := range ident {
		ident[i] = i
	}
	return p, c.Key, ident
}

// Metric selects the boundary ratio PartitionTargetRatio controls.
type Metric = partition.Metric

// Boundary metrics (§2.2): ByVf targets |Vf|/|V|, ByEf targets |Ef|/|E|.
const (
	ByVf = partition.ByVf
	ByEf = partition.ByEf
)

// Partition is a fragmentation F = (F1, ..., Fn) of a graph (§2.2).
type Partition struct {
	fr *partition.Fragmentation
}

// NumFragments reports |F|.
func (p *Partition) NumFragments() int { return p.fr.NumFragments() }

// Vf reports |Vf|, the number of nodes with incoming crossing edges.
func (p *Partition) Vf() int { return p.fr.Vf() }

// Ef reports |Ef|, the number of crossing edges.
func (p *Partition) Ef() int { return p.fr.Ef() }

// VfRatio reports |Vf|/|V|.
func (p *Partition) VfRatio() float64 { return p.fr.VfRatio() }

// EfRatio reports |Ef|/|E|.
func (p *Partition) EfRatio() float64 { return p.fr.EfRatio() }

// MaxFragmentSize reports |Fm|, the size of the largest fragment.
func (p *Partition) MaxFragmentSize() int { return p.fr.MaxFragmentSize() }

// CurrentGraph returns the graph as of all updates applied through a
// deployment of this partition — the graph originally fragmented when
// none have been. The result is an immutable snapshot (cached until the
// next update), suitable as the oracle input to Simulate or for
// re-fragmenting.
func (p *Partition) CurrentGraph() *Graph { return &Graph{g: p.fr.CurrentGraph()} }

// Assignment returns a copy of the node→fragment assignment vector.
func (p *Partition) Assignment() []int32 {
	return append([]int32(nil), p.fr.Assign...)
}

// Strategy names the registered partitioner that produced this
// partition ("custom" for explicit assignments).
func (p *Partition) Strategy() string { return p.fr.Strategy }

// BuildTime reports the wall time spent planning and building the
// fragmentation.
func (p *Partition) BuildTime() time.Duration { return p.fr.BuildTime }

// FragmentSizes returns each fragment's node count |Vi| sorted
// descending — the balance a partitioner achieved.
func (p *Partition) FragmentSizes() []int { return p.fr.FragmentSizes() }

// String summarizes the partition.
func (p *Partition) String() string { return p.fr.String() }

// PartitionOption tunes PartitionWith.
type PartitionOption func(*partition.Options)

// WithPartitionSeed fixes the seed driving every randomized choice of a
// strategy; runs with equal seeds produce identical assignments.
func WithPartitionSeed(seed int64) PartitionOption {
	return func(o *partition.Options) { o.Seed = seed }
}

// WithPartitionMetric selects the boundary metric (ByVf or ByEf) for
// the strategies that target or refine a ratio.
func WithPartitionMetric(m Metric) PartitionOption {
	return func(o *partition.Options) { o.Metric = m }
}

// WithPartitionTarget sets the boundary ratio the "targetratio"
// strategy aims for.
func WithPartitionTarget(target float64) PartitionOption {
	return func(o *partition.Options) { o.Target = target }
}

// WithBalanceSlack bounds fragment imbalance for the quality-first
// strategies: no fragment holds more than ceil((1+slack)·|V|/n) nodes.
// A slack ≤ 0 selects the default 10% (there is no way to request
// perfectly tight balance; use "random" or "blocks" for ±1 balance).
func WithBalanceSlack(slack float64) PartitionOption {
	return func(o *partition.Options) { o.Slack = slack }
}

// WithRefinePasses runs up to n incremental plurality-vote refinement
// passes after the base assignment (random, blocks, ldg, fennel).
func WithRefinePasses(n int) PartitionOption {
	return func(o *partition.Options) { o.RefinePasses = n }
}

// Partitioners lists the registered partitioning strategies, sorted by
// name: the quality-first streaming planners ("ldg", "fennel"), the
// paper's experiment fixtures ("random", "blocks", "targetratio",
// "chain") and the dGPMt precondition planner ("tree").
func Partitioners() []string { return partition.Partitioners() }

// PartitionWith fragments g into n fragments with the named registered
// strategy. The result records the strategy and build time, making
// every downstream measurement attributable to its fragmentation:
//
//	part, err := dgs.PartitionWith(g, "ldg", 256, dgs.WithPartitionSeed(1))
//	fmt.Println(part.Strategy(), part.Ef(), part.BuildTime())
func PartitionWith(g *Graph, name string, n int, opts ...PartitionOption) (*Partition, error) {
	var o partition.Options
	for _, opt := range opts {
		opt(&o)
	}
	fr, err := partition.PartitionBy(g.g, name, n, o)
	if err != nil {
		return nil, err
	}
	return &Partition{fr: fr}, nil
}

// PartitionRandom fragments g into n balanced random fragments.
func PartitionRandom(g *Graph, n int, seed int64) (*Partition, error) {
	return PartitionWith(g, "random", n, WithPartitionSeed(seed))
}

// PartitionBlocks fragments g into n contiguous ID blocks (low boundary
// on the locality-biased generator outputs).
func PartitionBlocks(g *Graph, n int) (*Partition, error) {
	return PartitionWith(g, "blocks", n)
}

// PartitionTargetRatio fragments g into n fragments whose boundary
// metric is close to target — the experiments' |Vf|/|Ef| knob (§6).
func PartitionTargetRatio(g *Graph, n int, metric Metric, target float64, seed int64) (*Partition, error) {
	return PartitionWith(g, "targetratio", n,
		WithPartitionMetric(metric), WithPartitionTarget(target), WithPartitionSeed(seed))
}

// PartitionTree splits a tree graph into ~n connected subtrees (dGPMt's
// precondition, Corollary 4).
func PartitionTree(g *Graph, n int) (*Partition, error) {
	return PartitionWith(g, "tree", n)
}

// PartitionChain assigns contiguous ID runs to n fragments — with the
// Fig-2 chain graphs this is the paper's worst-case fragmentation where
// every node is on the boundary.
func PartitionChain(g *Graph, n int) (*Partition, error) {
	return PartitionWith(g, "chain", n)
}

// PartitionFromAssign builds a fragmentation from an explicit node→site
// assignment.
func PartitionFromAssign(g *Graph, assign []int32) (*Partition, error) {
	fr, err := partition.FromAssign(g.g, assign)
	if err != nil {
		return nil, err
	}
	if err := fr.Validate(); err != nil {
		return nil, err
	}
	return &Partition{fr: fr}, nil
}

// Match is a simulation relation: for every query node, the set of data
// nodes matching it. The zero relation (some query node unmatched) is the
// empty relation Q(G) = ∅.
type Match struct {
	m *simulation.Match
}

// Ok reports whether G matches Q (every query node has a match).
func (m *Match) Ok() bool { return m.m.Ok() }

// NumPairs reports |Q(G)| as a set of (u,v) pairs.
func (m *Match) NumPairs() int { return m.m.NumPairs() }

// MatchesOf returns the sorted matches of query node u.
func (m *Match) MatchesOf(u QNode) []NodeID { return m.m.Sets[u] }

// Contains reports whether (u, v) is in the relation.
func (m *Match) Contains(u QNode, v NodeID) bool { return m.m.Contains(u, v) }

// Equal reports whether two relations are identical.
func (m *Match) Equal(o *Match) bool { return m.m.Equal(o.m) }

// String renders the relation compactly.
func (m *Match) String() string { return m.m.String() }

// Simulate computes Q(G) with the centralized
// O((|Vq|+|V|)(|Eq|+|E|)) algorithm [11,18] — the ground truth the
// distributed algorithms are verified against.
func Simulate(q *Pattern, g *Graph) *Match {
	return &Match{m: simulation.HHK(q.p, g.g)}
}

// errorf keeps error wrapping consistent across the facade.
func errorf(format string, args ...interface{}) error {
	return fmt.Errorf("dgs: "+format, args...)
}
