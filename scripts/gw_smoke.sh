#!/usr/bin/env bash
# Gateway smoke: the full serving stack as separate processes — two real
# dgsd site servers, one dgsgw gateway that ships them its fragments and
# serves HTTP. Asserts the serving semantics end to end:
#   1. /healthz is live and reports the build;
#   2. an identical second query is a cache hit;
#   3. /apply bumps the graph version and invalidates the cache;
#   4. the post-update query recomputes (and re-caches).
# This is the CI-enforced form of the README's dgsd × dgsgw quickstart.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${DGS_GW_SMOKE_PORT1:-17441}
PORT2=${DGS_GW_SMOKE_PORT2:-17442}
GWPORT=${DGS_GW_SMOKE_GWPORT:-17443}
BIN=bin

mkdir -p "$BIN"
go build -o "$BIN/dgsd" ./cmd/dgsd
go build -o "$BIN/dgsgw" ./cmd/dgsgw

"$BIN/dgsd" -listen "127.0.0.1:$PORT1" -quiet &
D1=$!
"$BIN/dgsd" -listen "127.0.0.1:$PORT2" -quiet &
D2=$!
GW=
trap 'kill $D1 $D2 ${GW:-} 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT1") 2>/dev/null && (exec 3<>"/dev/tcp/127.0.0.1/$PORT2") 2>/dev/null; then
    break
  fi
  sleep 0.1
done

# A closed chain graph: deterministic edges, so /apply below can delete
# a known-present edge (0 -> 1).
"$BIN/dgsgw" -listen "127.0.0.1:$GWPORT" -connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  -gen chain -nodes 400 -frags 4 &
GW=$!

BASE="http://127.0.0.1:$GWPORT"
up=0
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "gw smoke: gateway never became healthy" >&2
  exit 1
fi

echo "== healthz"
HEALTH=$(curl -fsS "$BASE/healthz")
echo "$HEALTH"
echo "$HEALTH" | grep -q '"ok": true'    || { echo "healthz not ok" >&2; exit 1; }
echo "$HEALTH" | grep -q '"build"'       || { echo "healthz lacks build version" >&2; exit 1; }
echo "$HEALTH" | grep -q '"remote": true' || { echo "gateway is not fronting remote sites" >&2; exit 1; }

Q='{"pattern":"node a A\nnode b B\nedge a b\nedge b a"}'

echo "== query #1 (miss)"
R1=$(curl -fsS "$BASE/query" -d "$Q")
echo "$R1" | grep -q '"cached": false' || { echo "first query should miss" >&2; exit 1; }

echo "== query #2 (must be a cache hit)"
R2=$(curl -fsS "$BASE/query" -d "$Q")
echo "$R2" | grep -q '"cached": true' || { echo "second identical query did not hit the cache" >&2; echo "$R2" >&2; exit 1; }

echo "== apply (delete edge 0->1; invalidates the cache)"
A1=$(curl -fsS "$BASE/apply" -d '{"ops":[{"del":true,"v":0,"w":1}]}')
echo "$A1"
echo "$A1" | grep -q '"version": 1' || { echo "apply did not bump the graph version" >&2; exit 1; }

echo "== query #3 (must recompute at the new version)"
R3=$(curl -fsS "$BASE/query" -d "$Q")
echo "$R3" | grep -q '"cached": false' || { echo "post-update query served the stale entry" >&2; echo "$R3" >&2; exit 1; }
echo "$R3" | grep -q '"version": 1'   || { echo "post-update result not tagged with version 1" >&2; exit 1; }

echo "== stats"
STATS=$(curl -fsS "$BASE/stats")
echo "$STATS"
echo "$STATS" | grep -q '"hits": 1'    || { echo "stats should report exactly one hit" >&2; exit 1; }
echo "$STATS" | grep -q '"applies": 1' || { echo "stats should report one apply" >&2; exit 1; }

echo "gw smoke: cache hit, update-driven invalidation and recompute all verified over 2 dgsd + 1 dgsgw"
