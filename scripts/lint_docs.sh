#!/usr/bin/env bash
# Documentation lint, enforced by `make docs` and CI:
#   1. every package (root, internal/*, cmd/*) has a package comment;
#   2. the operator-facing documents exist and are non-trivial.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$missing" ]; then
  echo "packages without a package comment:"
  echo "$missing" | sed 's/^/  /'
  fail=1
fi

for doc in README.md docs/WIRE.md docs/HTTP.md docs/ANALYSIS.md docs/OBSERVABILITY.md DESIGN.md; do
  if [ ! -s "$doc" ]; then
    echo "missing required document: $doc"
    fail=1
  fi
done

# The wire spec must cover every payload kind the codec knows.
for kind in falsify rankbatch push reroute subgraph vectors eqsystem values matches control delta batch; do
  if ! grep -qi "$kind" docs/WIRE.md; then
    echo "docs/WIRE.md does not mention payload kind '$kind'"
    fail=1
  fi
done

# The wire spec must cover every transport frame, including the v3
# liveness/failover frames, and the heartbeat failure semantics.
for need in HELLO DEPLOY OPEN CLOSE MSGB ACKN PING PONG REDEPLOY heartbeat "site-scoped" Recovery; do
  if ! grep -qi -- "$need" docs/WIRE.md; then
    echo "docs/WIRE.md does not mention '$need'"
    fail=1
  fi
done

# The HTTP spec must cover every gateway endpoint and the error,
# overload and failover semantics clients program against.
for need in /query /apply /stats /healthz overload bad_request deadline "503" "Retry-After" cached version site_lost failovers; do
  if ! grep -qi -- "$need" docs/HTTP.md; then
    echo "docs/HTTP.md does not mention '$need'"
    fail=1
  fi
done

# The design document must describe the fault-tolerance layer.
for need in "Fault tolerance" ErrSiteLost faultnet "failover_smoke"; do
  if ! grep -q -- "$need" DESIGN.md; then
    echo "DESIGN.md does not mention '$need'"
    fail=1
  fi
done

# The design document must describe the planning layer: the advisory
# plan, the confluence argument, the canonical key and the off switch.
for need in "## 10. Planning" selectivity advisory confluen canonical WithPlannerDisabled; do
  if ! grep -qi -- "$need" DESIGN.md; then
    echo "DESIGN.md does not mention '$need'"
    fail=1
  fi
done

# The wire spec must document how plans ride OPEN and degrade across
# protocol versions.
for need in planner "trailing-optional" "version negotiation"; do
  if ! grep -qi -- "$need" docs/WIRE.md; then
    echo "docs/WIRE.md does not mention '$need'"
    fail=1
  fi
done

# The wire spec must document the v5 tracing extension: the TRACE
# frame, the trailing-optional trace ID, and the byte-identity promise.
for need in TRACE traceID "byte-identical" "Distributed tracing"; do
  if ! grep -q -- "$need" docs/WIRE.md; then
    echo "docs/WIRE.md does not mention '$need'"
    fail=1
  fi
done

# The observability guide must cover each surface: the exposition
# endpoint, tracing, profiling, and the slow-query log — and name every
# component prefix of the metric catalog.
for need in /metrics WithTrace QueryTrace pprof slow-query dgs_gw_ dgs_net_ dgsd_ obs-smoke; do
  if ! grep -q -- "$need" docs/OBSERVABILITY.md; then
    echo "docs/OBSERVABILITY.md does not mention '$need'"
    fail=1
  fi
done

# The HTTP spec must document the plan-only explain request.
for need in explain canonical_key planner; do
  if ! grep -qi -- "$need" docs/HTTP.md; then
    echo "docs/HTTP.md does not mention '$need'"
    fail=1
  fi
done

# Every dgsvet analyzer must have its own section in docs/ANALYSIS.md.
while IFS=$'\t' read -r name _doc; do
  [ -n "$name" ] || continue
  if ! grep -q "^## $name\$" docs/ANALYSIS.md; then
    echo "docs/ANALYSIS.md has no '## $name' section for that dgsvet analyzer"
    fail=1
  fi
done < <(go run ./cmd/dgsvet -list)

if [ "$fail" -ne 0 ]; then
  echo "docs lint failed"
  exit 1
fi
echo "docs lint: ok"
