#!/usr/bin/env bash
# External static analysis, run by `make analyze` after dgsvet:
#   - staticcheck (honnef.co/go/tools) over ./...
#   - govulncheck (golang.org/x/vuln) over ./...
#
# Neither tool is vendored: when a binary is absent the step is skipped
# with a notice so offline development keeps working. CI installs the
# pinned versions below and sets ANALYZE_STRICT=1, which turns a missing
# tool into a failure — the gate cannot silently weaken there.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned versions, kept in lockstep with .github/workflows/ci.yml.
STATICCHECK_VERSION=2025.1
GOVULNCHECK_VERSION=v1.1.4

strict="${ANALYZE_STRICT:-0}"
fail=0

run_tool() {
  local name="$1" version="$2"
  shift 2
  if command -v "$name" >/dev/null 2>&1; then
    echo "analyze: $name ($version pinned) ./..."
    "$name" "$@" || fail=1
  elif [ "$strict" = "1" ]; then
    echo "analyze: $name not installed and ANALYZE_STRICT=1" >&2
    fail=1
  else
    echo "analyze: $name not installed; skipping (CI runs it pinned at $version)"
  fi
}

run_tool staticcheck "$STATICCHECK_VERSION" ./...
run_tool govulncheck "$GOVULNCHECK_VERSION" ./...

if [ "$fail" -ne 0 ]; then
  echo "analyze: external tools failed" >&2
  exit 1
fi
