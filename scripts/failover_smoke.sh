#!/usr/bin/env bash
# Failover smoke: a deployment spanning three real dgsd processes (plus
# one spare) keeps serving oracle-correct answers after one daemon is
# SIGKILLed mid-update-stream — recovery happens inside the one driver
# process, no restarts. The driver half lives in
# TestFailoverSmokeExternal (failover_smoke_test.go), gated by the
# environment variables this script sets.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${DGS_FAILOVER_PORT1:-17441}
PORT2=${DGS_FAILOVER_PORT2:-17442}
PORT3=${DGS_FAILOVER_PORT3:-17443}
PORT4=${DGS_FAILOVER_PORT4:-17444} # spare
BIN=bin

mkdir -p "$BIN"
go build -o "$BIN/dgsd" ./cmd/dgsd

PIDS=()
for p in "$PORT1" "$PORT2" "$PORT3" "$PORT4"; do
  "$BIN/dgsd" -listen "127.0.0.1:$p" &
  PIDS+=($!)
done
trap 'kill "${PIDS[@]}" 2>/dev/null || true' EXIT

# Wait for all four listeners.
for p in "$PORT1" "$PORT2" "$PORT3" "$PORT4"; do
  for i in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
      break
    fi
    sleep 0.1
  done
done

# Launch the driver: it deploys over the three serving daemons with the
# fourth as spare, and streams verified update rounds until a failover
# has been recorded and survived.
DGS_FAILOVER_SMOKE_ADDRS="127.0.0.1:$PORT1,127.0.0.1:$PORT2,127.0.0.1:$PORT3" \
DGS_FAILOVER_SMOKE_SPARE="127.0.0.1:$PORT4" \
  go test . -run '^TestFailoverSmokeExternal$' -count=1 -v -timeout 180s &
TEST=$!

# Let the stream get going, then kill one serving daemon outright —
# SIGKILL, not a graceful close: the driver must detect the loss and
# fail over to the spare while updates are in flight.
sleep 3
echo "== killing dgsd on port $PORT2 (pid ${PIDS[1]})"
kill -9 "${PIDS[1]}"

wait "$TEST"
echo "failover smoke: one of three daemons killed mid-stream; deployment recovered onto the spare"
