#!/usr/bin/env bash
# Loopback-TCP smoke: a deployment spanning two real dgsd processes
# serves one query per algorithm through dgsrun -connect. This is the
# CI-enforced form of the README's two-terminal quickstart.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${DGS_SMOKE_PORT1:-17431}
PORT2=${DGS_SMOKE_PORT2:-17432}
BIN=bin

mkdir -p "$BIN"
go build -o "$BIN/dgsd" ./cmd/dgsd
go build -o "$BIN/dgsrun" ./cmd/dgsrun

"$BIN/dgsd" -listen "127.0.0.1:$PORT1" &
D1=$!
"$BIN/dgsd" -listen "127.0.0.1:$PORT2" &
D2=$!
trap 'kill $D1 $D2 2>/dev/null || true' EXIT

# Wait for both listeners.
for i in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT1") 2>/dev/null && (exec 3<>"/dev/tcp/127.0.0.1/$PORT2") 2>/dev/null; then
    break
  fi
  sleep 0.1
done

CONNECT="127.0.0.1:$PORT1,127.0.0.1:$PORT2"

run() {
  echo "== dgsrun $* -connect $CONNECT"
  "$BIN/dgsrun" "$@" -connect "$CONNECT"
  echo
}

# One query per algorithm, each on the generator/partition its
# preconditions want (mirrors the conformance matrix).
run -algo dgpm     -gen web      -nodes 8000 -edges 32000 -frags 6
run -algo dgpmnopt -gen web      -nodes 4000 -edges 12000 -frags 4
run -algo dgpmd    -gen citation -nodes 6000 -edges 14000 -frags 6 -qdiam 3
run -algo dgpmt    -gen tree     -nodes 6000 -frags 6
run -algo match    -gen web      -nodes 3000 -edges  9000 -frags 4
run -algo dishhk   -gen web      -nodes 3000 -edges  9000 -frags 4
run -algo dmes     -gen web      -nodes 3000 -edges  9000 -frags 4

# Coalescing smoke: on a 2-daemon loopback run, the negotiated protocol
# must move the same workload in strictly fewer frames (and fewer wire
# bytes) than a deployment pinned to the per-message protocol 1.
echo "== coalescing reduces frames (2-daemon loopback)"
go test ./internal/transport/tcpnet -run '^TestCoalescingReducesFrames$' -count=1 -v

echo "tcp smoke: all algorithms served over 2 dgsd processes, coalescing verified"
