#!/usr/bin/env bash
# Observability smoke: the full stack as separate processes — two dgsd
# site servers with -metrics listeners, one dgsgw gateway fronting them
# — exercised end to end. Asserts:
#   1. GET /metrics serves Prometheus text on the gateway AND a daemon;
#   2. the gateway exposition agrees with its own /stats counters;
#   3. a {"trace":true} query returns a complete multi-site span tree;
#   4. the daemons counted the TRACE frames they shipped;
#   5. pprof answers on the daemon's metrics listener.
# This is the CI-enforced form of docs/OBSERVABILITY.md.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT1=${DGS_OBS_SMOKE_PORT1:-17451}
PORT2=${DGS_OBS_SMOKE_PORT2:-17452}
MPORT1=${DGS_OBS_SMOKE_MPORT1:-17453}
MPORT2=${DGS_OBS_SMOKE_MPORT2:-17454}
GWPORT=${DGS_OBS_SMOKE_GWPORT:-17455}
BIN=bin

mkdir -p "$BIN"
go build -o "$BIN/dgsd" ./cmd/dgsd
go build -o "$BIN/dgsgw" ./cmd/dgsgw

"$BIN/dgsd" -listen "127.0.0.1:$PORT1" -metrics "127.0.0.1:$MPORT1" -quiet &
D1=$!
"$BIN/dgsd" -listen "127.0.0.1:$PORT2" -metrics "127.0.0.1:$MPORT2" -quiet &
D2=$!
GW=
trap 'kill $D1 $D2 ${GW:-} 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT1") 2>/dev/null && (exec 3<>"/dev/tcp/127.0.0.1/$PORT2") 2>/dev/null; then
    break
  fi
  sleep 0.1
done

"$BIN/dgsgw" -listen "127.0.0.1:$GWPORT" -connect "127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
  -gen chain -nodes 400 -frags 4 -slow-query 1ns -quiet &
GW=$!

BASE="http://127.0.0.1:$GWPORT"
up=0
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ "$up" != 1 ]; then
  echo "obs smoke: gateway never became healthy" >&2
  exit 1
fi

Q='{"pattern":"node a A\nnode b B\nedge a b\nedge b a"}'
QT='{"pattern":"node a A\nnode b B\nedge a b\nedge b a","trace":true}'

echo "== traffic: one miss, one hit, one traced query"
curl -fsS "$BASE/query" -d "$Q" >/dev/null
curl -fsS "$BASE/query" -d "$Q" | grep -q '"cached": true' || { echo "second query did not hit" >&2; exit 1; }
TR=$(curl -fsS "$BASE/query" -d "$QT")
echo "$TR" | grep -q '"trace"'           || { echo "traced query returned no trace" >&2; echo "$TR" >&2; exit 1; }
echo "$TR" | grep -q '"complete": true'  || { echo "trace is incomplete on an all-v5 deployment" >&2; echo "$TR" >&2; exit 1; }
echo "$TR" | grep -q '"site": -1'        || { echo "trace lacks the coordinator's spans" >&2; exit 1; }
echo "$TR" | grep -q '"site": 0'         || { echo "trace lacks worker-site spans" >&2; exit 1; }
echo "$TR" | grep -q '"cached": false'   || { echo "traced query must bypass the cache" >&2; exit 1; }

echo "== gateway /metrics vs /stats"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | head -5
echo "$METRICS" | grep -q '^# TYPE dgs_gw_queries_total counter' || { echo "exposition lacks TYPE line" >&2; exit 1; }
STATS=$(curl -fsS "$BASE/stats")
queries=$(echo "$STATS"   | grep -o '"queries": [0-9]*'  | grep -o '[0-9]*')
hits=$(echo "$STATS"      | grep -o '"hits": [0-9]*'     | grep -o '[0-9]*')
mq=$(echo "$METRICS" | awk '$1 == "dgs_gw_queries_total" {print $2}')
mh=$(echo "$METRICS" | awk '$1 == "dgs_gw_cache_hits_total" {print $2}')
[ "$mq" = "$queries" ] || { echo "metrics queries=$mq but stats queries=$queries" >&2; exit 1; }
[ "$mh" = "$hits" ]    || { echo "metrics hits=$mh but stats hits=$hits" >&2; exit 1; }
# The deployment's registry is merged onto the same page.
echo "$METRICS" | grep -q '^dgs_failovers_total '        || { echo "merged page lacks dgs_failovers_total" >&2; exit 1; }
echo "$METRICS" | grep -q '^dgs_net_frames_out_total '   || { echo "merged page lacks transport metrics" >&2; exit 1; }
# The slow-query log threshold (1ns) makes every query slow.
slow=$(echo "$METRICS" | awk '$1 == "dgs_gw_slow_queries_total" {print $2}')
[ "${slow:-0}" -ge 1 ] || { echo "slow-query counter never moved (got '$slow')" >&2; exit 1; }

echo "== daemon /metrics + pprof"
DM=$(curl -fsS "http://127.0.0.1:$MPORT1/metrics"; curl -fsS "http://127.0.0.1:$MPORT2/metrics")
echo "$DM" | grep -q '^# TYPE dgsd_sessions_total counter' || { echo "daemon exposition lacks dgsd_sessions_total" >&2; exit 1; }
traces=$(echo "$DM" | awk '$1 == "dgsd_traces_total" {s += $2} END {print s+0}')
[ "$traces" -ge 1 ] || { echo "daemons shipped no TRACE frames (dgsd_traces_total=$traces)" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$MPORT1/debug/pprof/cmdline" >/dev/null || { echo "pprof not answering on the daemon metrics listener" >&2; exit 1; }

echo "obs smoke: exposition, stats agreement, distributed trace, TRACE accounting and pprof all verified over 2 dgsd + 1 dgsgw"
