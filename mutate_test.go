package dgs

// Unit tests for the mutable-deployment API: Apply validation and
// semantics, Watch/Maintained lifecycle, interaction with one-shot
// queries, and the 256-site acceptance scenario (a 1% deletion stream
// against a watched query matching the fresh-recompute oracle at every
// batch).

import (
	"context"
	"fmt"
	"testing"
)

// miniWorld builds a small deployed world: a synthetic graph, a random
// partition, and a cyclic query with non-trivial matches.
func miniWorld(t testing.TB, nv, ne, nf int, seed int64) (*Dict, *Graph, *Partition, *Deployment, *Pattern) {
	t.Helper()
	dict := NewDict()
	g := GenSynthetic(dict, nv, ne, seed)
	part, err := PartitionRandom(g, nf, seed)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	q := GenCyclicPatternOver(dict, 4, 6, 4, seed+7)
	return dict, g, part, dep, q
}

func TestApplyValidation(t *testing.T) {
	_, g, _, dep, _ := miniWorld(t, 200, 600, 4, 1)
	ctx := context.Background()

	// Deleting an absent edge fails the whole batch atomically.
	var missing EdgeOp
	found := false
	for v := 0; v < g.NumNodes() && !found; v++ {
		for w := 0; w < g.NumNodes(); w++ {
			if !g.g.HasEdge(NodeID(v), NodeID(w)) {
				missing = DeleteOp(NodeID(v), NodeID(w))
				found = true
				break
			}
		}
	}
	var existing EdgeOp
	g.g.Edges(func(v, w NodeID) bool {
		existing = DeleteOp(v, w)
		return false
	})
	before := dep.Partition().CurrentGraph().NumEdges()
	if _, err := dep.Apply(ctx, []EdgeOp{existing, missing}); err == nil {
		t.Fatal("batch with an absent-edge deletion must fail")
	}
	if got := dep.Partition().CurrentGraph().NumEdges(); got != before {
		t.Fatalf("failed batch mutated the graph: %d -> %d edges", before, got)
	}

	// Inserting a present edge fails; out-of-range nodes fail.
	ins := InsertOp(existing.V, existing.W)
	if _, err := dep.Apply(ctx, []EdgeOp{ins}); err == nil {
		t.Fatal("inserting an existing edge must fail")
	}
	if _, err := dep.Apply(ctx, []EdgeOp{InsertOp(NodeID(g.NumNodes()), 0)}); err == nil {
		t.Fatal("out-of-range node must fail")
	}

	// Cancelling ops net out to a no-op batch.
	st, err := dep.Apply(ctx, []EdgeOp{existing, InsertOp(existing.V, existing.W)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletions != 0 || st.Insertions != 0 || st.Delta.DataMsgs != 0 {
		t.Fatalf("cancelled batch distributed work: %+v", st)
	}
}

func TestApplyIsVisibleToQueries(t *testing.T) {
	dict := NewDict()
	// A -> B; query A->B matches until the edge is deleted, matches again
	// after re-insertion.
	b := NewGraphBuilder(dict)
	va := b.AddNode("A")
	vb := b.AddNode("B")
	b.AddEdge(va, vb)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionFromAssign(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	q, err := ParsePattern(dict, "node a A\nnode b B\nedge a b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, algo := range []Algorithm{AlgoDGPM, AlgoDGPMNoOpt, AlgoMatch, AlgoDisHHK, AlgoDMes} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := dep.Query(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match.Ok() {
				t.Fatal("must match before deletion")
			}
		})
	}
	if _, err := dep.Apply(ctx, []EdgeOp{DeleteOp(va, vb)}); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoDGPM, AlgoDGPMNoOpt, AlgoMatch, AlgoDisHHK, AlgoDMes} {
		t.Run("deleted/"+algo.String(), func(t *testing.T) {
			res, err := dep.Query(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			if res.Match.Ok() {
				t.Fatal("must not match after deletion")
			}
		})
	}
	if _, err := dep.Apply(ctx, []EdgeOp{InsertOp(va, vb)}); err != nil {
		t.Fatal(err)
	}
	res, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Ok() {
		t.Fatal("must match again after re-insertion")
	}
	if part.CurrentGraph().NumEdges() != 1 {
		t.Fatalf("current graph has %d edges, want 1", part.CurrentGraph().NumEdges())
	}
}

func TestWatchMaintainsUnderDeletions(t *testing.T) {
	_, _, part, dep, q := miniWorld(t, 300, 900, 6, 2)
	ctx := context.Background()
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Current().Equal(Simulate(q, part.CurrentGraph())) {
		t.Fatal("initial standing relation diverges from oracle")
	}
	stream := GenUpdateStream(part.CurrentGraph(), 90, 0, 3)
	for bi, batch := range BatchOps(stream, 30) {
		st, err := dep.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if st.Reevaluated != 0 {
			t.Fatalf("batch %d: deletion-only batch re-evaluated", bi)
		}
		oracle := Simulate(q, part.CurrentGraph())
		if !w.Current().Equal(oracle) {
			t.Fatalf("batch %d: maintained relation diverges from oracle", bi)
		}
	}
}

func TestWatchInsertionFallback(t *testing.T) {
	_, _, part, dep, q := miniWorld(t, 250, 500, 5, 4)
	ctx := context.Background()
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stream := GenUpdateStream(part.CurrentGraph(), 20, 40, 5)
	for bi, batch := range BatchOps(stream, 20) {
		st, err := dep.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if st.Insertions > 0 && st.Reevaluated != 1 {
			t.Fatalf("batch %d: %d insertions but %d re-evaluations", bi, st.Insertions, st.Reevaluated)
		}
		oracle := Simulate(q, part.CurrentGraph())
		if !w.Current().Equal(oracle) {
			t.Fatalf("batch %d: relation diverges from oracle (ins=%d)", bi, st.Insertions)
		}
	}
}

func TestWatchCloseAndDeploymentClose(t *testing.T) {
	_, _, part, dep, q := miniWorld(t, 150, 400, 3, 6)
	ctx := context.Background()
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	// A closed handle is skipped by Apply but keeps serving its relation.
	pre := w.Current()
	stream := GenUpdateStream(part.CurrentGraph(), 30, 0, 7)
	if _, err := dep.Apply(ctx, stream); err != nil {
		t.Fatal(err)
	}
	if !w.Current().Equal(pre) {
		t.Fatal("closed handle's relation changed")
	}
	// Apply/Watch on a closed deployment fail.
	dep.Close()
	if _, err := dep.Apply(ctx, stream); err == nil {
		t.Fatal("Apply on closed deployment must fail")
	}
	if _, err := dep.Watch(ctx, q); err == nil {
		t.Fatal("Watch on closed deployment must fail")
	}
}

func TestApplyConcurrentWithQueries(t *testing.T) {
	_, _, part, dep, q := miniWorld(t, 400, 1200, 8, 8)
	ctx := context.Background()
	stream := GenUpdateStream(part.CurrentGraph(), 120, 60, 9)
	batches := BatchOps(stream, 30)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 3*len(batches); j++ {
				if _, err := dep.Query(ctx, q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for bi, batch := range batches {
		if _, err := dep.Apply(ctx, batch); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// After the dust settles, everything agrees with the oracle.
	oracle := Simulate(q, part.CurrentGraph())
	res, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(oracle) {
		t.Fatal("post-stream query diverges from oracle")
	}
}

// A cancelled Apply commits the graph but cannot refresh the standing
// queries: EVERY registered handle must come out stale (not just the
// one whose refresh observed the cancellation), and the next healthy
// Apply must re-evaluate them all back into sync.
func TestApplyCancelledRefreshMarksAllWatchersStale(t *testing.T) {
	dict, _, part, dep, q := miniWorld(t, 250, 700, 5, 17)
	ctx := context.Background()
	q2 := GenCyclicPatternOver(dict, 3, 5, 4, 18)
	w1, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := dep.Watch(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	stream := GenUpdateStream(part.CurrentGraph(), 60, 0, 19)
	batches := BatchOps(stream, 30)
	preEdges := part.CurrentGraph().NumEdges()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := dep.Apply(cctx, batches[0]); err == nil {
		t.Fatal("Apply with a cancelled ctx must report the failed refresh")
	}
	// The batch is committed regardless...
	if got := part.CurrentGraph().NumEdges(); got != preEdges-30 {
		t.Fatalf("graph has %d edges after cancelled Apply, want %d", got, preEdges-30)
	}
	// ...and BOTH handles know they are out of date.
	if !w1.Stale() || !w2.Stale() {
		t.Fatalf("stale flags after cancelled Apply: w1=%v w2=%v (both must be true)", w1.Stale(), w2.Stale())
	}
	// The next healthy Apply re-evaluates both back into sync.
	st, err := dep.Apply(ctx, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Reevaluated != 2 {
		t.Fatalf("Reevaluated = %d, want 2 (both stale handles)", st.Reevaluated)
	}
	if w1.Stale() || w2.Stale() {
		t.Fatal("handles still stale after a successful Apply")
	}
	if !w1.Current().Equal(Simulate(q, part.CurrentGraph())) {
		t.Fatal("w1 diverges from oracle after recovery")
	}
	if !w2.Current().Equal(Simulate(q2, part.CurrentGraph())) {
		t.Fatal("w2 diverges from oracle after recovery")
	}
}

// Test256SiteDeletionStream is the acceptance scenario: a 256-site
// synthetic world, a 1% edge-deletion stream against a watched query,
// results matching the fresh-recompute oracle at every batch.
func Test256SiteDeletionStream(t *testing.T) {
	if testing.Short() {
		t.Skip("256-site world is slow under -short")
	}
	dict := NewDict()
	g := GenSynthetic(dict, 6_000, 15_000, 11)
	part, err := PartitionRandom(g, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	q := GenCyclicPatternOver(dict, 4, 6, 4, 12)
	ctx := context.Background()
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	nDel := g.NumEdges() / 100 // the 1% stream
	stream := GenUpdateStream(part.CurrentGraph(), nDel, 0, 13)
	var incBytes int64
	for bi, batch := range BatchOps(stream, nDel/5+1) {
		st, err := dep.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		incBytes += st.Maintenance.DataBytes
		oracle := Simulate(q, part.CurrentGraph())
		if !w.Current().Equal(oracle) {
			t.Fatalf("batch %d: maintained relation diverges from recompute oracle", bi)
		}
		// The fresh one-shot query agrees too.
		res, err := dep.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Match.Equal(oracle) {
			t.Fatalf("batch %d: one-shot query diverges from oracle", bi)
		}
	}
	t.Logf("1%% deletion stream (%d edges) maintained with %d incremental DS bytes", nDel, incBytes)
}

func ExampleDeployment_Watch() {
	dict := NewDict()
	b := NewGraphBuilder(dict)
	a0 := b.AddNode("A")
	b0 := b.AddNode("B")
	b1 := b.AddNode("B")
	b.AddEdge(a0, b0)
	b.AddEdge(a0, b1)
	g, _ := b.Build()
	part, _ := PartitionFromAssign(g, []int32{0, 0, 1})
	dep, _ := Deploy(part)
	defer dep.Close()
	q, _ := ParsePattern(dict, "node a A\nnode b B\nedge a b")
	w, _ := dep.Watch(context.Background(), q)
	fmt.Println("matches:", w.Current().Ok())
	dep.Apply(context.Background(), []EdgeOp{DeleteOp(a0, b1)})
	fmt.Println("after one deletion:", w.Current().Ok())
	dep.Apply(context.Background(), []EdgeOp{DeleteOp(a0, b0)})
	fmt.Println("after both deletions:", w.Current().Ok())
	// Output:
	// matches: true
	// after one deletion: true
	// after both deletions: false
}
