// Command dgsgw is the dgs query gateway: an HTTP daemon that deploys
// one data graph — in-process, or shipped to remote dgsd site servers
// over TCP — and serves pattern queries against the resident fragments
// with a version-tagged result cache, request coalescing, and admission
// control (bounded concurrency + bounded queue + overload rejection).
//
// Endpoints (docs/HTTP.md is the spec):
//
//	POST /query    pattern DSL in, match relation + stats out
//	POST /apply    edge-update batch in; bumps the graph version,
//	               invalidating every cached result
//	GET  /stats    serving counters: hit rate, in-flight, queue depth
//	GET  /healthz  liveness + build version + graph version
//	GET  /metrics  Prometheus text exposition: gateway, driver and
//	               transport metrics on one page (docs/OBSERVABILITY.md)
//
// Usage:
//
//	dgsgw -listen :7333 -gen web -nodes 60000 -edges 300000 -frags 8
//	dgsgw -listen :7333 -connect site1:7332,site2:7332 -frags 8
//
// With -connect the fragments live in dgsd processes and every site
// message crosses a real socket; the gateway is then the paper's
// coordinator with a serving front-end bolted on. Try it:
//
//	curl -s localhost:7333/query -d '{"pattern":"node a l0\nnode b l1\nedge a b"}'
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"dgs"
	"dgs/internal/buildinfo"
	"dgs/internal/serve"
)

func main() {
	var (
		listen    = flag.String("listen", ":7333", "HTTP address to serve the gateway API on")
		connect   = flag.String("connect", "", "comma-separated dgsd addresses: ship the fragments over TCP instead of hosting them in-process")
		gen       = flag.String("gen", "web", "generator: web|citation|synthetic|tree|chain")
		graphFile = flag.String("graph", "", "load a DGSG1 graph instead of generating")
		nodes     = flag.Int("nodes", 60000, "generated |V|")
		edges     = flag.Int("edges", 300000, "generated |E|")
		frags     = flag.Int("frags", 8, "number of fragments |F|")
		partName  = flag.String("part", "", "partitioner strategy: "+strings.Join(dgs.Partitioners(), "|")+" (default targetratio)")
		vf        = flag.Float64("vf", 0.25, "target |Vf|/|V| ratio for targetratio")
		seed      = flag.Int64("seed", 1, "random seed")
		algoName  = flag.String("algo", "dgpm", "default algorithm for requests that don't name one: "+strings.Join(serve.AlgorithmNames(), "|"))
		inflight  = flag.Int("max-inflight", 4, "admission: concurrently executing evaluations")
		queue     = flag.Int("max-queue", 64, "admission: queries waiting for a slot before shedding")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-query deadline")
		cacheSize = flag.Int("cache", 1024, "result cache entries; 0 or negative disables caching")
		slowQuery = flag.Duration("slow-query", 0, "log queries at or over this latency (0 disables the slow-query log)")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the gateway listener")
		quiet     = flag.Bool("quiet", false, "suppress startup logging")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dgsgw", buildinfo.Version())
		return
	}
	// One structured logger for the whole process: startup lines here,
	// slow-query records from the serving layer. -quiet silences it.
	var logw io.Writer = os.Stdout
	if *quiet {
		logw = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logw, nil)).With("component", "dgsgw")
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}

	algo, ok := serve.AlgorithmByName(*algoName)
	if !ok {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	dict := dgs.NewDict()
	var g *dgs.Graph
	switch {
	case *graphFile != "":
		f, err := os.Open(*graphFile)
		if err != nil {
			fail(err)
		}
		gg, err := dgs.ReadGraph(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		g = gg
	case *gen == "web":
		g = dgs.GenWeb(dict, *nodes, *edges, *seed)
	case *gen == "citation":
		g = dgs.GenCitation(dict, *nodes, *edges, *seed)
	case *gen == "synthetic":
		g = dgs.GenSynthetic(dict, *nodes, *edges, *seed)
	case *gen == "tree":
		g = dgs.GenTree(dict, *nodes, *seed)
	case *gen == "chain":
		// The Fig-2 chain gadget: deterministic edges ((2i,2i+1), (2i+1,
		// 2i+2), closing edge), which gives smoke tests a known edge to
		// delete via /apply.
		g = dgs.GenChain(dict, *nodes, true)
	default:
		fail(fmt.Errorf("unknown generator %q", *gen))
	}
	logf("dgsgw %s", buildinfo.Version())
	logf("graph:     %v", g)

	var part *dgs.Partition
	var err error
	if *partName != "" {
		part, err = dgs.PartitionWith(g, *partName, *frags,
			dgs.WithPartitionSeed(*seed), dgs.WithPartitionMetric(dgs.ByVf),
			dgs.WithPartitionTarget(*vf))
	} else {
		part, err = dgs.PartitionTargetRatio(g, *frags, dgs.ByVf, *vf, *seed)
	}
	if err != nil {
		fail(err)
	}
	logf("partition: %v [%s]", part, part.Strategy())

	var dopts []dgs.DeployOption
	if *connect != "" {
		addrs := strings.Split(*connect, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		dopts = append(dopts, dgs.WithRemoteSites(addrs...))
		logf("connect:   shipping %d fragments to %d dgsd site servers", *frags, len(addrs))
	}
	dep, err := dgs.Deploy(part, dopts...)
	if err != nil {
		fail(err)
	}
	defer dep.Close()

	if *cacheSize <= 0 {
		// The CLI convention: 0 turns the cache off. (The library's
		// Options zero value selects the default size instead.)
		*cacheSize = -1
	}
	srv := serve.New(dep, dict, serve.Options{
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		CacheSize:      *cacheSize,
		Algorithm:      algo,
		SlowQuery:      *slowQuery,
		Logger:         logger,
	})
	cacheDesc := fmt.Sprintf("%d entries", *cacheSize)
	if *cacheSize < 0 {
		cacheDesc = "off"
	}
	logf("serving:   %s (default algo %s, cache %s, %d in-flight / %d queued)",
		*listen, algo, cacheDesc, *inflight, *queue)
	handler := srv.Handler()
	if *withPprof {
		// Profiling rides the gateway listener: the API mux takes every
		// path except the pprof namespace.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logf("pprof:     /debug/pprof/ enabled")
	}
	// Header/idle timeouts keep slow or stalled clients from pinning
	// connections below the admission gate (the gate bounds evaluations,
	// not sockets).
	hs := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dgsgw:", err)
	os.Exit(1)
}
