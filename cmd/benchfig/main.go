// Command benchfig regenerates the paper's evaluation figures
// (Fig. 6(a)–6(p) of "Distributed Graph Simulation: Impossibility and
// Possibility", VLDB 2014) on the simulated cluster and prints the data
// series as text tables.
//
// Usage:
//
//	benchfig -fig 6a            # one panel (its sibling panel comes free)
//	benchfig -group exp1-F      # one experiment group
//	benchfig -all               # all 16 panels
//	benchfig -all -scale 0.2    # smaller datasets (faster)
//	benchfig -all -queries 5    # average over more random queries
//
// Beyond the paper's figures, the updates/transport/partition/serving
// groups measure the repo's extensions (incremental maintenance, TCP
// wire cost, partitioner quality, gateway QPS+p99+cache hit rate);
// -json records any run as a BENCH_*.json artifact:
//
//	benchfig -group serving -json BENCH_SERVING.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dgs/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure panel to regenerate (6a..6p)")
		group    = flag.String("group", "", "experiment group to regenerate")
		all      = flag.Bool("all", false, "regenerate every figure")
		scale    = flag.Float64("scale", 1, "dataset size multiplier")
		queries  = flag.Int("queries", 2, "random queries averaged per point")
		seed     = flag.Int64("seed", 1, "random seed")
		jsonPath = flag.String("json", "", "also write the produced figures as JSON to this file (BENCH_*.json recording)")
		partList = flag.String("part", "", "comma-separated partitioner strategies for the partition group (default: random,blocks,ldg,fennel; see dgsrun -part for the registry)")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	if *partList != "" {
		for _, s := range strings.Split(*partList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Partitioners = append(cfg.Partitioners, s)
			}
		}
	}
	var produced []*bench.Figure
	switch {
	case *all:
		for _, g := range bench.Groups() {
			produced = append(produced, runGroup(g, cfg)...)
		}
	case *group != "":
		produced = runGroup(*group, cfg)
	case *fig != "":
		figs, err := bench.RunFigure(*fig, cfg)
		if err != nil {
			fail(err)
		}
		print(figs)
		produced = figs
	default:
		fmt.Fprintln(os.Stderr, "usage: benchfig -fig 6a | -group exp1-F | -all")
		fmt.Fprintln(os.Stderr, "figures:", bench.Figures())
		fmt.Fprintln(os.Stderr, "groups: ", bench.Groups())
		os.Exit(2)
	}
	if *jsonPath != "" {
		record := struct {
			Scale   float64         `json:"scale"`
			Queries int             `json:"queries"`
			Seed    int64           `json:"seed"`
			Figures []*bench.Figure `json:"figures"`
		}{*scale, *queries, *seed, produced}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("# wrote %s\n", *jsonPath)
	}
}

func runGroup(name string, cfg bench.Config) []*bench.Figure {
	start := time.Now()
	figs, err := bench.RunGroup(name, cfg)
	if err != nil {
		fail(err)
	}
	print(figs)
	fmt.Printf("# group %s completed in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	return figs
}

func print(figs []*bench.Figure) {
	for _, f := range figs {
		fmt.Println(f.Table())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}
