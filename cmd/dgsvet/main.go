// Command dgsvet machine-checks the repository's own invariants: lock
// discipline, context-guarded blocking, wire-kind completeness,
// registry consistency, determinism of the partitioning paths, and
// sentinel-error comparison. It is the project-specific complement to
// go vet, wired into `make tier1` and the CI analysis job; see
// docs/ANALYSIS.md for what each analyzer enforces and how to suppress
// an intentional finding with //lint:allow.
//
// Usage:
//
//	dgsvet [-dir .] [-notests] [path/...]
//	dgsvet -list
//	dgsvet -version
//
// Without arguments every package of the module rooted at -dir is
// checked. Positional arguments restrict the per-package analyzers (and
// the reported findings) to packages whose import path matches; module
// analyzers always see the whole module so cross-package registries
// stay complete. Exit status is 1 when findings remain, 2 on load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dgs/internal/analysis"
	"dgs/internal/analysis/load"
	"dgs/internal/analysis/suite"
	"dgs/internal/buildinfo"
)

func main() {
	var (
		dir     = flag.String("dir", ".", "module root to analyze")
		noTests = flag.Bool("notests", false, "exclude _test.go files and test packages")
		list    = flag.Bool("list", false, "list analyzers (name\\tdoc) and exit")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("dgsvet", buildinfo.Version())
		return
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%s\t%s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := load.Load(load.Config{Dir: *dir, Tests: !*noTests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgsvet: load:", err)
		os.Exit(2)
	}

	keep := keepFunc(flag.Args())
	findings, err := analysis.Run(mod, suite.All(), keep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgsvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dgsvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// keepFunc builds the package filter from positional patterns: exact
// import path, or a prefix ending in "/..." (as in dgs/internal/...).
func keepFunc(patterns []string) func(*load.Package) bool {
	if len(patterns) == 0 {
		return nil
	}
	return func(pkg *load.Package) bool {
		// External test packages share their base package's fate.
		path := strings.TrimSuffix(pkg.Path, " [test]")
		for _, p := range patterns {
			if prefix, ok := strings.CutSuffix(p, "/..."); ok {
				if path == prefix || strings.HasPrefix(path, prefix+"/") {
					return true
				}
			} else if path == p {
				return true
			}
		}
		return false
	}
}
