// Command dgsrun deploys one distributed data graph and evaluates a
// pattern query against the resident fragments with any of the library's
// algorithms, reporting the result plus PT/DS statistics.
//
// Usage:
//
//	dgsrun -algo dgpm  -gen web -nodes 300000 -edges 1500000 -frags 8 -vf 0.25 -query q.pat
//	dgsrun -algo dgpmd -gen citation -nodes 140000 -edges 300000 -frags 8 -qdiam 4
//	dgsrun -algo dgpmt -gen tree -nodes 100000 -frags 8
//	dgsrun -algo match -graph g.dgsg -query q.pat -frags 4
//	dgsrun -ec2 -repeat 5          # EC2-like link model, amortized serving
//	dgsrun -connect host1:7332,host2:7332   # sites live in dgsd daemons
//
// The query file uses the pattern DSL (node <name> <label> / edge <a> <b>);
// without -query a generated query is used. -repeat N answers the query
// N times on the one deployment — fragmentation is paid once, queries
// are served from residency (per-query stats are printed each time).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dgs"
	"dgs/internal/buildinfo"
	"dgs/internal/serve"
)

func main() {
	var (
		algoName  = flag.String("algo", "dgpm", strings.Join(serve.AlgorithmNames(), "|"))
		gen       = flag.String("gen", "web", "generator: web|citation|synthetic|tree|chain")
		graphFile = flag.String("graph", "", "load a DGSG1 graph instead of generating")
		nodes     = flag.Int("nodes", 60000, "generated |V|")
		edges     = flag.Int("edges", 300000, "generated |E|")
		frags     = flag.Int("frags", 8, "number of fragments |F|")
		partName  = flag.String("part", "", "partitioner strategy: "+strings.Join(dgs.Partitioners(), "|")+" (default: targetratio, or tree/chain as the algorithm requires)")
		slack     = flag.Float64("slack", 0.10, "balance slack for quality-first partitioners (ldg, fennel); ≤0 selects the default 10%")
		refine    = flag.Int("refine", 0, "incremental refinement passes after the base assignment")
		vf        = flag.Float64("vf", 0.25, "target |Vf|/|V| ratio (non-tree)")
		queryFile = flag.String("query", "", "pattern DSL file")
		qnodes    = flag.Int("qnodes", 5, "generated query |Vq|")
		qedges    = flag.Int("qedges", 10, "generated query |Eq|")
		qdiam     = flag.Int("qdiam", 4, "generated DAG query diameter (dgpmd)")
		seed      = flag.Int64("seed", 1, "random seed")
		boolean   = flag.Bool("bool", false, "Boolean query (report true/false only)")
		showAll   = flag.Bool("matches", false, "print the full match relation")
		explain   = flag.Bool("explain", false, "print the evaluation plan (orders, estimates, canonical key) and exit without evaluating")
		trace     = flag.Bool("trace", false, "evaluate with distributed tracing and print the per-site per-round span tree")
		ec2       = flag.Bool("ec2", false, "charge the EC2-like link cost model (paper §6)")
		repeat    = flag.Int("repeat", 1, "serve the query N times on the one deployment")
		connect   = flag.String("connect", "", "comma-separated dgsd addresses: deploy the fragments over TCP instead of in-process")
		version   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dgsrun", buildinfo.Version())
		return
	}

	algo, ok := serve.AlgorithmByName(*algoName)
	if !ok {
		fail(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	dict := dgs.NewDict()
	var g *dgs.Graph
	switch {
	case *graphFile != "":
		f, err := os.Open(*graphFile)
		if err != nil {
			fail(err)
		}
		gg, err := dgs.ReadGraph(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		g = gg
		// NOTE: a loaded graph carries its own dictionary; parse queries
		// against it by reusing labels textually (the DSL interns by
		// name, so sharing the dict matters only for generated queries).
	case *gen == "web":
		g = dgs.GenWeb(dict, *nodes, *edges, *seed)
	case *gen == "citation":
		g = dgs.GenCitation(dict, *nodes, *edges, *seed)
	case *gen == "synthetic":
		g = dgs.GenSynthetic(dict, *nodes, *edges, *seed)
	case *gen == "tree":
		g = dgs.GenTree(dict, *nodes, *seed)
	case *gen == "chain":
		g = dgs.GenChain(dict, *nodes, true)
	default:
		fail(fmt.Errorf("unknown generator %q", *gen))
	}
	fmt.Println("graph:    ", g)

	var q *dgs.Pattern
	var err error
	switch {
	case *queryFile != "":
		src, rerr := os.ReadFile(*queryFile)
		if rerr != nil {
			fail(rerr)
		}
		q, err = dgs.ParsePattern(dict, string(src))
	case algo == dgs.AlgoDGPMd:
		q, err = dgs.GenDAGPattern(dict, *qnodes+*qdiam, *qedges+*qdiam, *qdiam, *seed)
	case *gen == "chain":
		q = dgs.ChainQuery(dict)
	case algo == dgs.AlgoDGPMt:
		q = dgs.GenTreePattern(dict, *qnodes, *seed)
	default:
		q = dgs.GenCyclicPattern(dict, *qnodes, *qedges, *seed)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("query:     |Vq|=%d |Eq|=%d dag=%v\n", q.NumNodes(), q.NumEdges(), q.IsDAG())

	var part *dgs.Partition
	switch {
	case *partName != "":
		part, err = dgs.PartitionWith(g, *partName, *frags,
			dgs.WithPartitionSeed(*seed), dgs.WithPartitionMetric(dgs.ByVf),
			dgs.WithPartitionTarget(*vf), dgs.WithBalanceSlack(*slack),
			dgs.WithRefinePasses(*refine))
	case algo == dgs.AlgoDGPMt:
		part, err = dgs.PartitionTree(g, *frags)
	case *gen == "chain":
		part, err = dgs.PartitionChain(g, *frags)
	default:
		part, err = dgs.PartitionTargetRatio(g, *frags, dgs.ByVf, *vf, *seed)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("partition: %v [%s, built in %v]\n", part, part.Strategy(), part.BuildTime().Round(time.Millisecond))

	var dopts []dgs.DeployOption
	if *ec2 {
		dopts = append(dopts, dgs.WithNetwork(dgs.EC2Network()))
	}
	if *connect != "" {
		if *ec2 {
			fail(fmt.Errorf("-ec2 emulates a network; -connect uses a real one (pick one)"))
		}
		addrs := strings.Split(*connect, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		dopts = append(dopts, dgs.WithRemoteSites(addrs...))
		fmt.Printf("connect:   shipping %d fragments to %d dgsd site servers\n", *frags, len(addrs))
	}
	qopts := []dgs.QueryOption{dgs.WithAlgorithm(algo)}
	if *gen == "citation" {
		qopts = append(qopts, dgs.WithGraphIsDAG())
	}
	if *trace {
		qopts = append(qopts, dgs.WithTrace())
	}
	dopts = append(dopts, dgs.WithQueryDefaults(qopts...))
	dep, err := dgs.Deploy(part, dopts...)
	if err != nil {
		fail(err)
	}
	defer dep.Close()

	if *explain {
		pi, err := dep.Explain(q)
		if err != nil {
			fail(err)
		}
		fmt.Print(pi)
		return
	}

	ctx := context.Background()
	if *repeat < 1 {
		*repeat = 1
	}
	var res *dgs.Result
	for i := 0; i < *repeat; i++ {
		res, err = dep.Query(ctx, q)
		if err != nil {
			fail(err)
		}
		st := res.Stats
		if *repeat > 1 {
			fmt.Printf("query #%d:  PT=%v DS=%.2f KB\n", i+1, st.Wall.Round(0), float64(st.DataBytes)/1024)
		}
	}
	if *boolean {
		fmt.Println("matches:  ", res.Match.Ok())
	} else {
		fmt.Printf("matches:   ok=%v pairs=%d\n", res.Match.Ok(), res.Match.NumPairs())
	}
	st := res.Stats
	fmt.Printf("PT:        %v (busiest site %v)\n", st.Wall.Round(0), st.MaxSiteBusy.Round(0))
	fmt.Printf("DS:        %.2f KB in %d messages (+%d control B, +%d result B)\n",
		float64(st.DataBytes)/1024, st.DataMsgs, st.ControlBytes, st.ResultBytes)
	if dep.Remote() {
		sent, received := dep.WireFrames()
		fmt.Printf("wire:      %.2f KB measured on the TCP path (frames + acks)\n", float64(st.WireBytes)/1024)
		fmt.Printf("frames:    %d sent / %d received across the deployment's sockets\n", sent, received)
	}
	fmt.Printf("rounds:    %d\n", st.Rounds)
	if *trace {
		if res.Trace != nil {
			fmt.Print(res.Trace.Flame())
		} else {
			fmt.Println("trace:     none (planner short-circuit: no session was opened)")
		}
	}
	if *showAll {
		for u := 0; u < q.NumNodes(); u++ {
			fmt.Printf("  %s -> %v\n", q.NodeName(dgs.QNode(u)), res.Match.MatchesOf(dgs.QNode(u)))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dgsrun:", err)
	os.Exit(1)
}
