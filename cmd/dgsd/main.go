// Command dgsd is the dgs site-server daemon: it hosts graph fragments
// shipped by a driver over TCP and runs their site actors for every
// session the driver opens — queries, live-update distribution, and
// standing-query maintenance. One daemon backs one deployment at a time
// (like one EC2 instance in the paper's §6 setup) and resets when its
// driver disconnects, ready for the next.
//
// Usage:
//
//	dgsd -listen :7332
//	dgsd -listen :7332 -metrics :9332   # Prometheus /metrics + pprof
//
// Then, from the driver side, either the library:
//
//	dep, err := dgs.Deploy(part, dgs.WithRemoteSites("site1:7332", "site2:7332"))
//
// or the CLI:
//
//	dgsrun -connect site1:7332,site2:7332 -algo dgpm ...
//
// The daemon can serve every algorithm compiled into it (this binary
// imports all of them; the startup line lists the registry). It answers
// the driver's PING heartbeats (wire protocol 3) and accepts REDEPLOY
// frames, so a deployment that loses a sibling daemon can re-host the
// lost fragments here without restarting anything — a daemon listed as
// a spare (dgs.WithSpareSites) idles until that moment. Protocol
// details — handshake, fragment shipping, framing, versioning,
// heartbeats, failover and tracing — are in docs/WIRE.md.
//
// -metrics starts a second HTTP listener exposing the daemon's
// counters in Prometheus text format at GET /metrics and the standard
// net/http/pprof profiling endpoints under /debug/pprof/ (see
// docs/OBSERVABILITY.md). The main site-serving port carries only the
// binary wire protocol, so observability traffic never competes with
// session frames for a parser.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"dgs/internal/buildinfo"
	"dgs/internal/obs"
	"dgs/internal/transport/tcpnet"

	// Imported for their cluster-registry entries: a daemon can only
	// instantiate sites for algorithms linked into it.
	_ "dgs/internal/baseline"
	_ "dgs/internal/dagcheck"
	_ "dgs/internal/dagsim"
	_ "dgs/internal/dgpm"
	_ "dgs/internal/treesim"
)

func main() {
	var (
		listen  = flag.String("listen", ":7332", "TCP address to serve sites on")
		metrics = flag.String("metrics", "", "HTTP address for GET /metrics and /debug/pprof (off when empty)")
		quiet   = flag.Bool("quiet", false, "suppress connection lifecycle logging")
		version = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dgsd", buildinfo.Version())
		return
	}
	srv := &tcpnet.Server{}
	if *quiet {
		srv.Logf = func(string, ...any) {}
	} else {
		// Lifecycle lines go out as structured records; the printf-style
		// message the transport composes becomes the msg field.
		logger := slog.With("component", "dgsd", "listen", *listen)
		srv.Logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ms := &http.Server{Addr: *metrics, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := ms.ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "dgsd: metrics listener:", err)
				os.Exit(1)
			}
		}()
	}
	if err := tcpnet.ListenAndServe(*listen, srv); err != nil {
		fmt.Fprintln(os.Stderr, "dgsd:", err)
		os.Exit(1)
	}
}
