// Command gengraph generates workload data graphs (the paper's Yahoo /
// Citation / synthetic stand-ins; see the internal/bench package comment) and saves them in the
// DGSG1 binary format for dgsrun -graph.
//
// Usage:
//
//	gengraph -gen web -nodes 300000 -edges 1500000 -o web.dgsg
//	gengraph -gen citation -nodes 140000 -edges 300000 -o cit.dgsg
package main

import (
	"flag"
	"fmt"
	"os"

	"dgs"
)

func main() {
	var (
		gen   = flag.String("gen", "web", "generator: web|citation|synthetic|tree|chain")
		nodes = flag.Int("nodes", 300000, "|V|")
		edges = flag.Int("edges", 1500000, "|E| (ignored for tree/chain)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "graph.dgsg", "output file")
	)
	flag.Parse()

	dict := dgs.NewDict()
	var g *dgs.Graph
	switch *gen {
	case "web":
		g = dgs.GenWeb(dict, *nodes, *edges, *seed)
	case "citation":
		g = dgs.GenCitation(dict, *nodes, *edges, *seed)
	case "synthetic":
		g = dgs.GenSynthetic(dict, *nodes, *edges, *seed)
	case "tree":
		g = dgs.GenTree(dict, *nodes, *seed)
	case "chain":
		g = dgs.GenChain(dict, *nodes, true)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown generator %q\n", *gen)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := g.WriteBinary(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %v\n", *out, g)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
