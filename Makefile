GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 vet build test race bench fuzz examples docs smoke-tcp partition-smoke bench-partition gw-smoke bench-serving clean

# tier1 is the gate every change must pass: static checks, full build,
# and the test suite under the race detector (the Deployment API serves
# concurrent queries; races are correctness bugs here).
tier1: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz accepts
# one target per invocation). CI uses this as a smoke pass; let it run
# longer locally with FUZZTIME=5m.
fuzz:
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzDecode$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzDeltaRoundTrip$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzFrameRoundTrip$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/pattern -run=^$$ -fuzz=^FuzzParsePattern$$ -fuzztime=$(FUZZTIME)

# docs fails when any package lacks a package comment or an
# operator-facing document (README, wire spec) is missing/stale.
docs:
	./scripts/lint_docs.sh

# smoke-tcp runs the two-terminal quickstart non-interactively: two real
# dgsd processes on loopback, one dgsrun -connect query per algorithm.
smoke-tcp:
	./scripts/tcp_smoke.sh

# partition-smoke runs the partition bench group on a tiny graph (both
# backends) and asserts the quality claim in miniature: LDG must beat
# the random fixture on |Ef|, and every point must carry its
# fragmentation metadata.
partition-smoke:
	$(GO) test ./internal/bench -run '^TestPartitionSmoke$$' -v

# bench-partition regenerates BENCH_PARTITION.json: the 256-site
# partitioner quality sweep (build time, |Vf|/|Ef|, dGPM/dMes PT+DS,
# measured TCP wire bytes per strategy).
bench-partition:
	$(GO) run ./cmd/benchfig -group partition -json BENCH_PARTITION.json

# gw-smoke runs the serving stack as separate processes: 2 dgsd site
# servers + 1 dgsgw gateway, asserting cache hit, update-driven
# invalidation and post-update recompute over HTTP.
gw-smoke:
	./scripts/gw_smoke.sh

# bench-serving regenerates BENCH_SERVING.json: the 256-site gateway
# serving experiment (95/5 read/update mix, skewed vs uniform traffic,
# QPS + p99 + cache hit rate, cache on vs off).
bench-serving:
	$(GO) run ./cmd/benchfig -group serving -queries 4 -json BENCH_SERVING.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/impossibility
	$(GO) run ./examples/trees
	$(GO) run ./examples/citation
	$(GO) run ./examples/social

clean:
	$(GO) clean ./...
