GO ?= go
FUZZTIME ?= 10s

.PHONY: tier1 vet dgsvet analyze analyze-fix build test race bench fuzz examples docs smoke-tcp partition-smoke bench-partition gw-smoke obs-smoke bench-serving bench-transport failover-smoke bench-failover bench-planner clean help

# tier1 is the gate every change must pass: static checks (go vet plus
# the project-specific dgsvet analyzers), full build, and the test suite
# under the race detector (the Deployment API serves concurrent
# queries; races are correctness bugs here).
tier1: vet dgsvet build race

vet:
	$(GO) vet ./...

# dgsvet machine-checks the repo's own invariants (lock discipline,
# ctx-guarded blocking, wire-kind completeness, registry consistency,
# determinism, sentinel errors). See docs/ANALYSIS.md.
dgsvet:
	$(GO) run ./cmd/dgsvet

# analyze is the full static-analysis pass: dgsvet, then staticcheck and
# govulncheck (skipped with a notice when not installed; CI pins and
# installs them and sets ANALYZE_STRICT=1).
analyze: dgsvet
	./scripts/analyze.sh

# analyze-fix: there is no auto-fixer — dgsvet findings are either real
# bugs (fix the code) or deliberate (annotate the line with
# `//lint:allow <analyzer> — reason`). This target just reprints the
# findings to work through.
analyze-fix:
	@echo "dgsvet has no auto-fix: correct the code, or annotate deliberate"
	@echo "findings with '//lint:allow <analyzer> — reason' (docs/ANALYSIS.md)."
	@$(GO) run ./cmd/dgsvet || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# fuzz runs each native fuzz target for FUZZTIME (go test -fuzz accepts
# one target per invocation). CI uses this as a smoke pass; let it run
# longer locally with FUZZTIME=5m.
fuzz:
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzDecode$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzDeltaRoundTrip$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzFrameRoundTrip$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run=^$$ -fuzz=^FuzzBatchRoundTrip$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/pattern -run=^$$ -fuzz=^FuzzParsePattern$$ -fuzztime=$(FUZZTIME)

# docs fails when any package lacks a package comment or an
# operator-facing document (README, wire spec) is missing/stale.
docs:
	./scripts/lint_docs.sh

# smoke-tcp runs the two-terminal quickstart non-interactively: two real
# dgsd processes on loopback, one dgsrun -connect query per algorithm.
smoke-tcp:
	./scripts/tcp_smoke.sh

# partition-smoke runs the partition bench group on a tiny graph (both
# backends) and asserts the quality claim in miniature: LDG must beat
# the random fixture on |Ef|, and every point must carry its
# fragmentation metadata.
partition-smoke:
	$(GO) test ./internal/bench -run '^TestPartitionSmoke$$' -v

# bench-partition regenerates BENCH_PARTITION.json: the 256-site
# partitioner quality sweep (build time, |Vf|/|Ef|, dGPM/dMes PT+DS,
# measured TCP wire bytes per strategy).
bench-partition:
	$(GO) run ./cmd/benchfig -group partition -json BENCH_PARTITION.json

# gw-smoke runs the serving stack as separate processes: 2 dgsd site
# servers + 1 dgsgw gateway, asserting cache hit, update-driven
# invalidation and post-update recompute over HTTP.
gw-smoke:
	./scripts/gw_smoke.sh

# obs-smoke runs 2 dgsd (with -metrics) + 1 dgsgw and asserts the
# observability layer end to end: Prometheus exposition on daemon and
# gateway, /metrics agreeing with /stats, a complete distributed trace
# for a {"trace":true} query, TRACE-frame accounting, and pprof.
obs-smoke:
	./scripts/obs_smoke.sh

# failover-smoke kills one of three real dgsd processes mid-update-
# stream and requires the one driver process to fail over to a spare
# daemon and keep answering oracle-correct — no restarts.
failover-smoke:
	./scripts/failover_smoke.sh

# bench-failover regenerates BENCH_FAILOVER.json: detection latency,
# re-deploy time and queries lost per kill at 64 sites.
bench-failover:
	$(GO) run ./cmd/benchfig -group failover -json BENCH_FAILOVER.json

# bench-serving regenerates BENCH_SERVING.json: the 256-site gateway
# serving experiment (95/5 read/update mix, skewed vs uniform traffic,
# QPS + p99 + cache hit rate, cache on vs off).
bench-serving:
	$(GO) run ./cmd/benchfig -group serving -queries 4 -json BENCH_SERVING.json

# bench-transport regenerates BENCH_TRANSPORT.json: in-process vs
# loopback TCP at wire protocol 1 (per-message frames) vs the current
# coalescing protocol (untraced and with per-query distributed tracing
# on), with per-query frame and allocation columns and a pure
# message-storm row at 64 sites. The pre-coalescing recording is
# preserved in BENCH_TRANSPORT_PRE_COALESCE.json.
bench-transport:
	$(GO) run ./cmd/benchfig -group transport -scale 0.3 -json BENCH_TRANSPORT.json

# bench-planner regenerates BENCH_PLANNER.json: planned vs
# declaration-order evaluation over an |Eq| sweep at 64 sites (both
# arms interleaved on resident deployments, DS asserted identical by
# confluence), plus shared vs independent standing-query maintenance
# at k overlapping Watches.
bench-planner:
	$(GO) run ./cmd/benchfig -group planner -json BENCH_PLANNER.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/impossibility
	$(GO) run ./examples/trees
	$(GO) run ./examples/citation
	$(GO) run ./examples/social

clean:
	$(GO) clean ./...

# help lists the targets an operator actually reaches for.
help:
	@echo "dgs make targets:"
	@echo "  tier1            vet + dgsvet + build + race tests (the merge gate)"
	@echo "  analyze          dgsvet + staticcheck + govulncheck (ANALYZE_STRICT=1 in CI)"
	@echo "  analyze-fix      reprint dgsvet findings with fixing guidance"
	@echo "  test / race      test suite (plain / under the race detector)"
	@echo "  fuzz             fuzz targets for FUZZTIME each (default $(FUZZTIME))"
	@echo "  docs             documentation lint (package comments, specs, ANALYSIS.md)"
	@echo "  bench            root-package benchmarks, one iteration"
	@echo "  smoke-tcp        two dgsd processes on loopback, all algorithms"
	@echo "  partition-smoke  partitioner quality smoke (LDG beats Random)"
	@echo "  gw-smoke         2 dgsd + 1 dgsgw over HTTP (cache + invalidation)"
	@echo "  obs-smoke        metrics exposition + distributed trace end to end"
	@echo "  failover-smoke   kill 1 of 3 dgsd mid-stream; driver fails over to a spare"
	@echo "  bench-failover   regenerate BENCH_FAILOVER.json (detection/redeploy/loss)"
	@echo "  bench-partition  regenerate BENCH_PARTITION.json (long)"
	@echo "  bench-serving    regenerate BENCH_SERVING.json (long)"
	@echo "  bench-planner    regenerate BENCH_PLANNER.json (plan on/off + watch sharing)"
	@echo "  bench-transport  regenerate BENCH_TRANSPORT.json (v1 vs coalescing)"
	@echo "  examples         run every example program"
