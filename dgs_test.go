package dgs

import (
	"bytes"
	"strings"
	"testing"
)

const testQuery = `
node a l0
node b l1
node c l2
edge a b
edge b c
edge c a
`

func testWorld(t testing.TB, algoFriendly bool) (*Dict, *Graph, *Pattern, *Partition) {
	t.Helper()
	dict := NewDict()
	g := GenSynthetic(dict, 2000, 8000, 42)
	q, err := ParsePattern(dict, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	_ = algoFriendly
	return dict, g, q, part
}

func TestAllAlgorithmsAgreeOnGeneral(t *testing.T) {
	_, g, q, part := testWorld(t, true)
	want := Simulate(q, g)
	for _, algo := range []Algorithm{AlgoDGPM, AlgoDGPMNoOpt, AlgoMatch, AlgoDisHHK, AlgoDMes} {
		res, err := Run(algo, q, part)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Match.Equal(want) {
			t.Fatalf("%s: result differs from centralized", algo)
		}
	}
}

func TestDGPMdOnCitation(t *testing.T) {
	dict := NewDict()
	g := GenCitation(dict, 3000, 9000, 5)
	if !g.IsDAG() {
		t.Fatal("citation graph must be a DAG")
	}
	q, err := GenDAGPattern(dict, 9, 13, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := Simulate(q, g)
	res, err := Run(AlgoDGPMd, q, part, Options{GraphIsDAG: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(want) {
		t.Fatal("dGPMd differs from centralized")
	}
}

func TestDGPMtOnTree(t *testing.T) {
	dict := NewDict()
	g := GenTree(dict, 3000, 5)
	if !g.IsTree() {
		t.Fatal("tree generator must produce a tree")
	}
	q := GenTreePattern(dict, 4, 9)
	part, err := PartitionTree(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := Simulate(q, g)
	res, err := Run(AlgoDGPMt, q, part)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(want) {
		t.Fatal("dGPMt differs from centralized")
	}
	if res.Stats.Rounds != 2 {
		t.Fatalf("dGPMt rounds = %d", res.Stats.Rounds)
	}
}

func TestRunBooleanChain(t *testing.T) {
	dict := NewDict()
	q := ChainQuery(dict)
	closed := GenChain(dict, 12, true)
	broken := GenChain(dict, 12, false)
	pc, err := PartitionChain(closed, 12)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := PartitionChain(broken, 12)
	if err != nil {
		t.Fatal(err)
	}
	okC, _, err := RunBoolean(AlgoDGPM, q, pc)
	if err != nil || !okC {
		t.Fatalf("closed chain must match (err=%v)", err)
	}
	okB, stB, err := RunBoolean(AlgoDGPM, q, pb)
	if err != nil || okB {
		t.Fatalf("broken chain must not match (err=%v)", err)
	}
	if stB.DataMsgs < 11 {
		t.Fatalf("falsification must travel the chain: %d msgs", stB.DataMsgs)
	}
}

func TestGraphBuilderAndIO(t *testing.T) {
	dict := NewDict()
	b := NewGraphBuilder(dict)
	v := b.AddNode("X")
	w := b.AddNode("Y")
	b.AddEdge(v, w)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Size() != 3 {
		t.Fatal("builder shape wrong")
	}
	if g.LabelName(v) != "X" {
		t.Fatal("label wrong")
	}
	if len(g.Succ(v)) != 1 || g.Succ(v)[0] != w {
		t.Fatal("succ wrong")
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.LabelName(0) != "X" {
		t.Fatal("round trip broken")
	}
	if !strings.Contains(g.String(), "|V|=2") {
		t.Fatalf("String = %q", g.String())
	}
}

func TestPatternAccessors(t *testing.T) {
	dict := NewDict()
	q, err := ParsePattern(dict, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 3 || q.NumEdges() != 3 || q.Size() != 6 {
		t.Fatal("pattern shape wrong")
	}
	if q.IsDAG() {
		t.Fatal("triangle is cyclic")
	}
	if q.Diameter() != 1 {
		t.Fatalf("Diameter = %d", q.Diameter())
	}
	if q.NodeName(0) != "a" {
		t.Fatal("NodeName wrong")
	}
	if _, err := ParsePattern(dict, "node a"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if !strings.Contains(q.String(), "edge a b") {
		t.Fatal("String missing edges")
	}
}

func TestPartitionAccessors(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 500, 2000, 1)
	part, err := PartitionRandom(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if part.NumFragments() != 5 {
		t.Fatal("|F| wrong")
	}
	if part.Vf() == 0 || part.Ef() == 0 {
		t.Fatal("random partition of a connected-ish graph has a boundary")
	}
	if part.VfRatio() <= 0 || part.EfRatio() <= 0 {
		t.Fatal("ratios must be positive")
	}
	if part.MaxFragmentSize() == 0 {
		t.Fatal("Fm wrong")
	}
	if !strings.Contains(part.String(), "|F|=5") {
		t.Fatal("String wrong")
	}
	if _, err := PartitionRandom(g, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestPartitionFromAssign(t *testing.T) {
	dict := NewDict()
	b := NewGraphBuilder(dict)
	b.AddNode("A")
	b.AddNode("A")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionFromAssign(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if part.NumFragments() != 2 {
		t.Fatal("wrong |F|")
	}
	if _, err := PartitionFromAssign(g, []int32{0}); err == nil {
		t.Fatal("short assign accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoDGPM: "dGPM", AlgoDGPMNoOpt: "dGPMNOpt", AlgoDGPMd: "dGPMd",
		AlgoDGPMt: "dGPMt", AlgoMatch: "Match", AlgoDisHHK: "disHHK", AlgoDMes: "dMes",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
	if Algorithm(99).String() != "unknown" {
		t.Fatal("unknown algorithm name")
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	_, _, q, part := testWorld(t, true)
	if _, err := Run(Algorithm(99), q, part); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestOptionsAblation(t *testing.T) {
	_, g, q, part := testWorld(t, true)
	want := Simulate(q, g)
	res, err := Run(AlgoDGPM, q, part, Options{DisablePush: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(want) {
		t.Fatal("no-push ablation differs")
	}
	res2, err := Run(AlgoDGPM, q, part, Options{PushTheta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Match.Equal(want) {
		t.Fatal("eager-push differs")
	}
}

func TestMatchAccessors(t *testing.T) {
	_, g, q, _ := testWorld(t, true)
	m := Simulate(q, g)
	if m.Ok() {
		if m.NumPairs() == 0 {
			t.Fatal("Ok but no pairs")
		}
		u0 := m.MatchesOf(0)
		if len(u0) == 0 || !m.Contains(0, u0[0]) {
			t.Fatal("MatchesOf/Contains inconsistent")
		}
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPartitionWithAPI(t *testing.T) {
	dict := NewDict()
	g := GenWeb(dict, 2000, 8000, 9)
	names := Partitioners()
	if len(names) != 7 {
		t.Fatalf("Partitioners() = %v, want 7 strategies", names)
	}
	//lint:allow regconsistent — probes the unknown-strategy error path
	if _, err := PartitionWith(g, "no-such", 4); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	rnd, err := PartitionWith(g, "random", 16, WithPartitionSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := PartitionWith(g, "ldg", 16, WithPartitionSeed(3), WithBalanceSlack(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if ldg.Strategy() != "ldg" || rnd.Strategy() != "random" {
		t.Fatalf("strategies not stamped: %q %q", ldg.Strategy(), rnd.Strategy())
	}
	if ldg.BuildTime() <= 0 {
		t.Fatal("build time not stamped")
	}
	if ldg.Ef() >= rnd.Ef() {
		t.Fatalf("ldg cut %d not below random cut %d on a locality graph", ldg.Ef(), rnd.Ef())
	}
	sizes := ldg.FragmentSizes()
	if cap := (2000*11 + 159) / (10 * 16); sizes[0] > cap { // ceil(1.1·|V|/n)
		t.Fatalf("ldg balance slack violated: max %d > cap %d", sizes[0], cap)
	}
	// The wrappers route through the registry and stamp metadata too.
	tr, err := PartitionTargetRatio(g, 8, ByVf, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Strategy() != "targetratio" {
		t.Fatalf("wrapper strategy = %q", tr.Strategy())
	}
}
