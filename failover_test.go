package dgs

// Fault-tolerance tests over real loopback TCP: a daemon crash
// mid-stream must surface as the retryable ErrSiteLost (never a hang,
// never a misclassified ErrClosed), and recovery — automatic onto a
// spare daemon, or manual redeploy onto a survivor — must restore
// oracle-correct answers and re-register standing queries, all within
// one driver process (no restart).

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dgs/internal/transport/tcpnet"
)

// killableDaemon is a dgsd-equivalent server whose accepted connections
// the test can sever, simulating a daemon crash.
type killableDaemon struct {
	addr string
	cap  *capturingListener
}

func startKillableDaemons(t *testing.T, k int) []*killableDaemon {
	t.Helper()
	ds := make([]*killableDaemon, k)
	for i := range ds {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cap := &capturingListener{Listener: lis}
		srv := &tcpnet.Server{}
		go srv.Serve(cap)
		t.Cleanup(func() { lis.Close() })
		ds[i] = &killableDaemon{addr: lis.Addr().String(), cap: cap}
	}
	return ds
}

// failoverWorkload builds a graph, pattern, and partition sized for
// quick failover rounds.
func failoverWorkload(t *testing.T, frags int, seed int64) (*Dict, *Graph, *Pattern, *Partition) {
	t.Helper()
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, seed)
	q := GenCyclicPatternOver(dict, 4, 6, 4, seed+1)
	part, err := PartitionBlocks(g, frags)
	if err != nil {
		t.Fatal(err)
	}
	return dict, g, q, part
}

// waitRecovered polls until a query succeeds (recovery finished) or the
// deadline passes; any non-site-lost error fails immediately.
func waitRecovered(t *testing.T, dep *Deployment, q *Pattern) *Result {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := dep.Query(context.Background(), q)
		if err == nil {
			return res
		}
		if !errors.Is(err, ErrSiteLost) {
			t.Fatalf("while waiting for recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("deployment did not recover in time; last error: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFailoverToSpare: with a spare daemon listed, losing a serving
// daemon triggers automatic recovery — the spare absorbs the lost
// fragments, queries answer oracle-correct again, the standing query
// re-registers, and Failovers records the event. No process restarts.
func TestFailoverToSpare(t *testing.T) {
	_, g, q, part := failoverWorkload(t, 6, 23)
	daemons := startKillableDaemons(t, 3)
	spare := startSiteServers(t, 1)
	addrs := []string{daemons[0].addr, daemons[1].addr, daemons[2].addr}
	dep, err := Deploy(part,
		WithRemoteSites(addrs...),
		WithSpareSites(spare...),
		WithHeartbeat(50*time.Millisecond, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()

	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	oracle := Simulate(q, g)
	if !w.Current().Equal(oracle) {
		t.Fatal("standing query's initial relation diverges from Simulate")
	}

	daemons[1].cap.severAll() // crash mid-deployment

	res := waitRecovered(t, dep, q)
	if !res.Match.Equal(oracle) {
		t.Fatal("post-failover query diverges from Simulate")
	}
	if n := dep.Failovers(); n < 1 {
		t.Fatalf("Failovers() = %d after a recovery", n)
	}
	// The standing query re-registered during recovery; give the
	// re-evaluation (which runs after queries unblock) time to land.
	deadline := time.Now().Add(10 * time.Second)
	for !w.Current().Equal(oracle) {
		if time.Now().After(deadline) {
			t.Fatal("standing query did not re-register after failover")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Live updates keep working against the recovered substrate, and the
	// re-registered watcher tracks them.
	var ops []EdgeOp
	for v := 0; v < g.NumNodes() && len(ops) < 20; v++ {
		if succ := g.Succ(NodeID(v)); len(succ) > 0 {
			ops = append(ops, DeleteOp(NodeID(v), succ[0]))
		}
	}
	if _, err := dep.Apply(ctx, ops); err != nil {
		t.Fatalf("apply after failover: %v", err)
	}
	after := dep.Partition().CurrentGraph()
	if oracle := Simulate(q, after); !w.Current().Equal(oracle) {
		t.Fatal("watcher diverges from oracle after post-failover updates")
	}
	res2, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if oracle := Simulate(q, after); !res2.Match.Equal(oracle) {
		t.Fatal("query diverges from oracle after post-failover updates")
	}
}

// TestFailoverRedeployToSurvivor: with no spare, a manual Recover
// doubles the lost fragments up on a surviving daemon over the
// REDEPLOY frame. Also the regression test for the error taxonomy:
// Query and Apply after a crash must wrap ErrSiteLost (retryable), not
// ErrClosed and not a generic transport error.
func TestFailoverRedeployToSurvivor(t *testing.T) {
	_, g, q, part := failoverWorkload(t, 4, 29)
	daemons := startKillableDaemons(t, 2)
	dep, err := Deploy(part, WithRemoteSites(daemons[0].addr, daemons[1].addr))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	oracle := Simulate(q, g)
	if res, err := dep.Query(ctx, q); err != nil || !res.Match.Equal(oracle) {
		t.Fatalf("pre-crash query: err=%v", err)
	}
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	daemons[0].cap.severAll()

	// Without spares or heartbeat there is no automatic recovery: the
	// deployment suspends and every operation fails fast with the
	// retryable sentinel.
	_, qerr := dep.Query(ctx, q)
	if !errors.Is(qerr, ErrSiteLost) {
		t.Fatalf("query after crash = %v, want ErrSiteLost", qerr)
	}
	if errors.Is(qerr, ErrClosed) {
		t.Fatalf("query after crash misreports ErrClosed: %v", qerr)
	}
	_, aerr := dep.Apply(ctx, []EdgeOp{DeleteOp(0, g.Succ(0)[0])})
	if !errors.Is(aerr, ErrSiteLost) || errors.Is(aerr, ErrClosed) {
		t.Fatalf("apply after crash = %v, want ErrSiteLost (not ErrClosed)", aerr)
	}

	if err := dep.Recover(ctx); err != nil {
		t.Fatalf("recover onto survivor: %v", err)
	}
	if n := dep.Failovers(); n != 1 {
		t.Fatalf("Failovers() = %d, want 1", n)
	}
	res, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(oracle) {
		t.Fatal("post-redeploy query diverges from Simulate")
	}
	if !w.Current().Equal(oracle) {
		t.Fatal("standing query not re-registered by Recover")
	}

	// The recovered substrate takes updates; the doubled-up survivor
	// owns the moved fragments now.
	var ops []EdgeOp
	for v := 0; v < g.NumNodes() && len(ops) < 15; v++ {
		if succ := g.Succ(NodeID(v)); len(succ) > 0 {
			ops = append(ops, DeleteOp(NodeID(v), succ[0]))
		}
	}
	if _, err := dep.Apply(ctx, ops); err != nil {
		t.Fatalf("apply after redeploy: %v", err)
	}
	after := dep.Partition().CurrentGraph()
	if oracle := Simulate(q, after); !w.Current().Equal(oracle) {
		t.Fatal("watcher diverges from oracle after post-redeploy updates")
	}
}

// TestRecoverNoCapacityPoisons: no spare and no survivor (the only
// daemon died) — Recover reports the retryable condition, and the
// deployment stays suspended rather than dead until capacity appears.
func TestRecoverNoCapacity(t *testing.T) {
	_, _, q, part := failoverWorkload(t, 2, 31)
	daemons := startKillableDaemons(t, 1)
	dep, err := Deploy(part, WithRemoteSites(daemons[0].addr))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	daemons[0].cap.severAll()
	if _, err := dep.Query(ctx, q); !errors.Is(err, ErrSiteLost) {
		t.Fatalf("query after crash = %v, want ErrSiteLost", err)
	}
	if err := dep.Recover(ctx); !errors.Is(err, ErrSiteLost) {
		t.Fatalf("Recover with no capacity = %v, want ErrSiteLost", err)
	}
	if _, err := dep.Query(ctx, q); !errors.Is(err, ErrSiteLost) {
		t.Fatalf("query after failed recovery = %v, want ErrSiteLost still", err)
	}
}
