package dgs

// The chaos arm of the property harness: the same seeded random graphs
// × update streams as proptest_test.go, but with a scripted kill /
// half-open / recover schedule injected through the faultnet transport
// decorator. The sites run on codec-cloned fragments (like daemons own
// their shipped copies), the driver retains its own fragmentation, and
// after every recovery the maintained relation, live queries and the
// structural invariants must all match the centralized oracle.
//
// Determinism: the whole schedule is drawn up front from the seed,
// faults are injected at batch boundaries from the test goroutine
// (faultnet reports losses synchronously), and recovery is manual — no
// wall-clock detection in the loop. Failures print the reproducing
// seed. Runs under -race in CI.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/partition"
	"dgs/internal/transport/faultnet"
)

func TestPropertyChaosFailover(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for s := 0; s < seeds; s++ {
		seed := int64(4000 + 53*s)
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runChaosCase(t, seed)
		})
	}
}

// chaosDeploy builds a deployment whose sites live behind faultnet on
// codec-cloned fragments, so killing a site and re-hosting it from the
// driver's retained fragmentation means something: the two sides hold
// distinct state, exactly like a daemon deployment.
func chaosDeploy(t *testing.T, seed int64, part *Partition) (*Deployment, *faultnet.Net) {
	t.Helper()
	src := part.fr
	clones := make([]*partition.Fragment, len(src.Frags))
	for i, f := range src.Frags {
		clones[i] = partition.CloneFragment(f)
	}
	innerFr := partition.FragmentationFromParts(src.Assign, clones)
	fn := faultnet.Wrap(cluster.NewInProc(part.NumFragments(), innerFr, cluster.Network{}), faultnet.Options{Seed: seed})
	dep, err := Deploy(part, WithTransport(fn))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !dep.Remote() {
		t.Fatalf("seed %d: a faultnet deployment must count as remote (driver-side replay)", seed)
	}
	return dep, fn
}

func runChaosCase(t *testing.T, seed int64) {
	pc := drawCase(t, seed)
	ctx := context.Background()
	dep, fn := chaosDeploy(t, seed, pc.part)
	defer dep.Close()
	w, err := dep.Watch(ctx, pc.q)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	defer w.Close()
	if !w.Current().Equal(Simulate(pc.q, pc.part.CurrentGraph())) {
		t.Fatalf("seed %d: initial relation diverges from oracle", pc.seed)
	}

	n := pc.part.NumFragments()
	r := rand.New(rand.NewSource(seed ^ 0x5eedfa11))
	kills := 0
	for bi, batch := range pc.batches {
		switch r.Intn(4) {
		case 1:
			// Kill → operations fail retryably → revive + recover.
			site := r.Intn(n)
			fn.Kill(site)
			kills++
			if _, err := dep.Query(ctx, pc.q); !errors.Is(err, ErrSiteLost) {
				t.Fatalf("seed %d batch %d: query after kill(%d) = %v, want ErrSiteLost", seed, bi, site, err)
			}
			fn.Revive(site)
			if err := dep.Recover(ctx); err != nil {
				t.Fatalf("seed %d batch %d: recover after kill(%d): %v", seed, bi, site, err)
			}
		case 2:
			// Kill, then try the batch while down: it must fail with the
			// retryable sentinel and the graph must stay pre-batch; the
			// recovery then re-ships every fragment (interrupted-apply
			// safety) and the SAME batch applies cleanly below.
			site := r.Intn(n)
			fn.Kill(site)
			kills++
			if _, err := dep.Apply(ctx, batch); !errors.Is(err, ErrSiteLost) {
				t.Fatalf("seed %d batch %d: apply after kill(%d) = %v, want ErrSiteLost", seed, bi, site, err)
			}
			fn.Revive(site)
			if err := dep.Recover(ctx); err != nil {
				t.Fatalf("seed %d batch %d: recover after interrupted apply: %v", seed, bi, err)
			}
		case 3:
			// Half-open: the site is silently dead, so a query hangs
			// until its deadline; detection then unblocks recovery.
			site := r.Intn(n)
			fn.HalfOpen(site)
			kills++
			qctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
			_, err := dep.Query(qctx, pc.q)
			cancel()
			if err == nil {
				t.Fatalf("seed %d batch %d: query against half-open site %d succeeded", seed, bi, site)
			}
			fn.DetectSilent()
			fn.Revive(site)
			if err := dep.Recover(ctx); err != nil {
				t.Fatalf("seed %d batch %d: recover after half-open: %v", seed, bi, err)
			}
		}
		if _, err := dep.Apply(ctx, batch); err != nil {
			t.Fatalf("seed %d batch %d: %v", seed, bi, err)
		}
		cur := pc.part.CurrentGraph()
		oracle := Simulate(pc.q, cur)
		if !w.Current().Equal(oracle) {
			t.Fatalf("seed %d batch %d: maintained relation diverges from oracle after chaos", seed, bi)
		}
		res, err := dep.Query(ctx, pc.q)
		if err != nil {
			t.Fatalf("seed %d batch %d: %v", seed, bi, err)
		}
		if !res.Match.Equal(oracle) {
			t.Fatalf("seed %d batch %d: live query diverges from oracle after chaos", seed, bi)
		}
		if err := pc.part.fr.Validate(); err != nil {
			t.Fatalf("seed %d batch %d: fragmentation invariant broken: %v", seed, bi, err)
		}
	}
	// The schedule must actually have exercised failover for most seeds;
	// a seed that drew no faults still verified the clean path.
	if kills > 0 && dep.Failovers() < int64(1) {
		t.Fatalf("seed %d: %d kills but no recorded failover", seed, kills)
	}
}
