package dgs

// Tests of the persistent Deployment API: fragment once, serve many —
// sequential and concurrent queries, context cancellation, per-query
// option handling (including the θ=0 regression), and lifecycle edges.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dgs/internal/cluster"
)

func deployWorld(t testing.TB) (*Graph, *Pattern, *Deployment) {
	t.Helper()
	dict := NewDict()
	g := GenSynthetic(dict, 2000, 8000, 42)
	q, err := ParsePattern(dict, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	return g, q, dep
}

// Two sequential queries on one deployment: both equal to the
// centralized ground truth, with isolated (and therefore identical)
// per-query statistics.
func TestDeployQuerySequential(t *testing.T) {
	g, q, dep := deployWorld(t)
	want := Simulate(q, g)
	ctx := context.Background()

	res1, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Match.Equal(want) || !res2.Match.Equal(want) {
		t.Fatal("sequential queries differ from centralized simulation")
	}
	// Stats are per-query: the second identical query must report the
	// same shipment, not an accumulation.
	if res1.Stats.DataMsgs != res2.Stats.DataMsgs || res1.Stats.DataBytes != res2.Stats.DataBytes {
		t.Fatalf("stats not isolated per query: %+v vs %+v", res1.Stats, res2.Stats)
	}
	if res1.Stats.DataMsgs == 0 {
		t.Fatal("expected data shipment on a 4-fragment world")
	}
}

// Concurrent queries on one deployment, across algorithms, must each
// return the exact centralized relation. Run under -race in tier-1.
func TestDeployQueryConcurrent(t *testing.T) {
	g, q, dep := deployWorld(t)
	want := Simulate(q, g)
	algos := []Algorithm{AlgoDGPM, AlgoDGPMNoOpt, AlgoDisHHK, AlgoDMes, AlgoMatch}

	var wg sync.WaitGroup
	errs := make(chan error, 2*len(algos))
	for i := 0; i < 2*len(algos); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := algos[i%len(algos)]
			res, err := dep.Query(context.Background(), q, WithAlgorithm(algo))
			if err != nil {
				errs <- fmt.Errorf("%s: %w", algo, err)
				return
			}
			if !res.Match.Equal(want) {
				errs <- fmt.Errorf("%s: concurrent result differs from centralized", algo)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Concurrent queries with different patterns: per-query sessions must
// not leak falsifications between each other's relations.
func TestDeployQueryConcurrentDistinctPatterns(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 2000, 8000, 42)
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	queries := make([]*Pattern, 6)
	for i := range queries {
		queries[i] = GenCyclicPatternOver(dict, 4, 7, 3, int64(50+i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *Pattern) {
			defer wg.Done()
			res, err := dep.Query(context.Background(), q)
			if err != nil {
				errs <- fmt.Errorf("query %d: %w", i, err)
				return
			}
			if !res.Match.Equal(Simulate(q, g)) {
				errs <- fmt.Errorf("query %d: result differs from centralized", i)
			}
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A cancelled context aborts the query promptly with the context's
// error; the deployment stays usable for later queries.
func TestQueryContextCancellation(t *testing.T) {
	dict := NewDict()
	q := ChainQuery(dict)
	g := GenChain(dict, 32, false)
	part, err := PartitionChain(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	// A slow network makes the 32-hop causal falsification chain take
	// ~32×(latency+per-msg) ≫ the timeout.
	dep, err := Deploy(part, WithNetwork(Network{Latency: 20 * time.Millisecond, PerMsg: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// Already-cancelled context: immediate error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dep.Query(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query err = %v, want context.Canceled", err)
	}

	// Same on a free-network deployment, where the protocol would
	// otherwise quiesce instantly: cancellation must win
	// deterministically, not race the fixpoint.
	fastDep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer fastDep.Close()
	if _, err := fastDep.Query(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled fast query err = %v, want context.Canceled", err)
	}

	// Deadline mid-protocol: prompt return, not the full chain latency.
	ctx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = dep.Query(ctx, q)
	el := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query err = %v, want context.DeadlineExceeded", err)
	}
	if el > 2*time.Second {
		t.Fatalf("cancellation was not prompt: returned after %v", el)
	}

	// The abandoned query's traffic must not poison a fresh query.
	ok, _, err := dep.QueryBoolean(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("broken chain must not match")
	}
}

// WithPushTheta must honor an explicit θ=0 — the legacy Options sentinel
// silently replaced it with the 0.2 default.
func TestWithPushThetaHonorsZero(t *testing.T) {
	resolve := func(opts ...QueryOption) queryConfig {
		var qc queryConfig
		for _, o := range opts {
			o(&qc)
		}
		return qc
	}
	if cfg := resolve(WithPushTheta(0)).dgpmConfig(); cfg.Theta != 0 || !cfg.Push {
		t.Fatalf("WithPushTheta(0) resolved to %+v; θ=0 not honored", cfg)
	}
	if cfg := resolve().dgpmConfig(); cfg.Theta != 0.2 {
		t.Fatalf("default θ = %v, want 0.2", cfg.Theta)
	}
	if cfg := resolve(WithPushTheta(0.7)).dgpmConfig(); cfg.Theta != 0.7 {
		t.Fatalf("θ = %v, want 0.7", cfg.Theta)
	}

	// θ=0 (always push) must still produce the exact relation.
	g, q, dep := deployWorld(t)
	res, err := dep.Query(context.Background(), q, WithPushTheta(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(Simulate(q, g)) {
		t.Fatal("θ=0 result differs from centralized simulation")
	}
}

// Regression for the compat path: the legacy struct's documented
// sentinel (0 = unset → default 0.2) is preserved, and a non-zero value
// still overrides.
func TestRunOptionsPushThetaSentinel(t *testing.T) {
	resolve := func(o Options) queryConfig {
		var qc queryConfig
		for _, opt := range o.queryOptions(AlgoDGPM) {
			opt(&qc)
		}
		return qc
	}
	if cfg := resolve(Options{PushTheta: 0}).dgpmConfig(); cfg.Theta != 0.2 {
		t.Fatalf("legacy PushTheta=0 resolved θ=%v, want the 0.2 default", cfg.Theta)
	}
	if cfg := resolve(Options{PushTheta: 0.05}).dgpmConfig(); cfg.Theta != 0.05 {
		t.Fatalf("legacy PushTheta=0.05 resolved θ=%v", cfg.Theta)
	}
	if cfg := resolve(Options{DisablePush: true}).dgpmConfig(); cfg.Push {
		t.Fatal("legacy DisablePush not honored")
	}
}

// Deployment-level query defaults apply to every query; per-query
// options override them.
func TestWithQueryDefaults(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 1000, 4000, 9)
	q, err := ParsePattern(dict, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionTargetRatio(g, 3, ByVf, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part, WithQueryDefaults(WithAlgorithm(AlgoDMes)))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	want := Simulate(q, g)

	res, err := dep.Query(context.Background(), q) // defaults → dMes
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(want) {
		t.Fatal("default-algorithm query differs from centralized")
	}
	if res.Stats.Rounds == 0 {
		t.Fatal("dMes reports supersteps; default algorithm not applied")
	}
	res2, err := dep.Query(context.Background(), q, WithAlgorithm(AlgoDGPM))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Match.Equal(want) {
		t.Fatal("override-algorithm query differs from centralized")
	}
}

// A failing query (precondition violation) must not wedge the
// deployment.
func TestQueryErrorLeavesDeploymentUsable(t *testing.T) {
	g, q, dep := deployWorld(t)
	// The synthetic graph is not a tree: dGPMt must refuse.
	if _, err := dep.Query(context.Background(), q, WithAlgorithm(AlgoDGPMt)); err == nil {
		t.Fatal("dGPMt accepted a non-tree graph")
	}
	res, err := dep.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(Simulate(q, g)) {
		t.Fatal("query after failed query differs from centralized")
	}
}

func TestQueryAfterCloseFails(t *testing.T) {
	_, q, dep := deployWorld(t)
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dep.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := dep.Query(context.Background(), q); err == nil {
		t.Fatal("query on a closed deployment succeeded")
	} else if !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want a closed-deployment error", err)
	}
}

// Close during an in-flight query aborts it with an error rather than
// hanging.
func TestCloseAbortsInFlightQuery(t *testing.T) {
	dict := NewDict()
	q := ChainQuery(dict)
	g := GenChain(dict, 32, false)
	part, err := PartitionChain(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part, WithNetwork(Network{Latency: 20 * time.Millisecond, PerMsg: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := dep.Query(context.Background(), q)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the protocol start
	dep.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query on a closing deployment reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query hung across Close")
	}
}

func TestDeploymentAccessors(t *testing.T) {
	_, _, dep := deployWorld(t)
	if dep.NumSites() != 4 {
		t.Fatalf("NumSites = %d", dep.NumSites())
	}
	if dep.Partition() == nil || dep.Partition().NumFragments() != 4 {
		t.Fatal("Partition accessor wrong")
	}
	if _, err := Deploy(nil); err == nil {
		t.Fatal("Deploy(nil) accepted")
	}
	if _, err := dep.Query(context.Background(), nil); err == nil {
		t.Fatal("Query(nil pattern) accepted")
	}
	if _, err := dep.Query(context.Background(), mustPattern(t), WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func mustPattern(t *testing.T) *Pattern {
	t.Helper()
	q, err := ParsePattern(NewDict(), "node a l0")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// The tree algorithm works through the deployment path too.
func TestDeployQueryTree(t *testing.T) {
	dict := NewDict()
	g := GenTree(dict, 3000, 5)
	q := GenTreePattern(dict, 4, 9)
	part, err := PartitionTree(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part, WithQueryDefaults(WithAlgorithm(AlgoDGPMt)))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	want := Simulate(q, g)
	for i := 0; i < 2; i++ {
		res, err := dep.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Match.Equal(want) {
			t.Fatalf("dGPMt query %d differs from centralized", i)
		}
		if res.Stats.Rounds != 2 {
			t.Fatalf("dGPMt rounds = %d", res.Stats.Rounds)
		}
	}
}

// The DAG algorithm works through the deployment path, both with the
// DAG-G assertion and with the distributed acyclicity check.
func TestDeployQueryDAG(t *testing.T) {
	dict := NewDict()
	g := GenCitation(dict, 3000, 9000, 5)
	q, err := GenDAGPattern(dict, 9, 13, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	want := Simulate(q, g)
	res, err := dep.Query(context.Background(), q, WithAlgorithm(AlgoDGPMd), WithGraphIsDAG())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(want) {
		t.Fatal("dGPMd (asserted DAG) differs from centralized")
	}
	// Cyclic pattern without the assertion: the distributed acyclicity
	// check runs as its own session on the same deployment.
	cyc, err := ParsePattern(dict, "node a l0\nnode b l1\nedge a b\nedge b a")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dep.Query(context.Background(), cyc, WithAlgorithm(AlgoDGPMd))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Match.Ok() {
		t.Fatal("cyclic pattern on a DAG graph must have an empty relation")
	}
}

// Regression: cluster.ErrClosed is documented "returned wrapped; test
// with errors.Is" — WaitQuiesce surfaces either the bare sentinel or
// the transport failure that killed the session, which may wrap it. A
// == comparison in Query's translation missed the wrapped form and
// leaked the raw cluster error instead of ErrClosed (caught by
// dgsvet's senterr analyzer).
func TestQueryAfterClusterFailureIsErrClosed(t *testing.T) {
	_, q, dep := deployWorld(t)
	// Poison the cluster underneath a still-open deployment the way a
	// dying transport does: a deployment-fatal failure wrapping the
	// sentinel.
	dep.c.Fail(0, fmt.Errorf("transport torn down: %w", cluster.ErrClosed))
	_, err := dep.Query(context.Background(), q)
	if err == nil {
		t.Fatal("query on a failed cluster succeeded")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("query error = %v, want errors.Is(err, ErrClosed)", err)
	}
}
